//! Pre-resolved telemetry handle bundles for the solver hot paths.
//!
//! Metric resolution takes the registry lock, so the solvers resolve
//! their handles **once** per solve (or per run) into these bundles and
//! record through them lock-free afterwards. A default-constructed
//! bundle is fully disabled: every record call is a branch on a `None`.
//!
//! Worker-side counts arrive as [`SlotSolveStats`] deltas carried on
//! the per-SBS job results and are recorded here by the driving thread
//! in SBS order (see [`crate::workspace`] for why that preserves
//! bitwise determinism).

use crate::workspace::SlotSolveStats;
use jocal_telemetry::{Counter, Histogram, Telemetry};

/// Handles for one family of per-SBS sub-solves (`P1` caching columns
/// or `P2` load columns), named with a common prefix.
///
/// Metric names (for prefix `p2`):
///
/// * `p2_sbs_solve_us` — histogram of per-SBS column solve latency;
/// * `p2_slot_solves_total`, `p2_trivial_slots_total`,
///   `p2_fastpath_hits_total` — slot-solve counters;
/// * `p2_pgd_iterations_total`, `p2_pgd_projections_total`,
///   `p2_pgd_converged_total`, `p2_pgd_budget_exhausted_total`,
///   `p2_pgd_step_floor_hits_total` — inner PGD counters;
/// * `p2_sparse_slots_total`, `p2_dense_slots_total` — which slot-solve
///   path (nonzero-indexed vs full dense block) answered each slot.
#[derive(Debug, Clone, Default)]
pub struct SubSolveMetrics {
    /// Per-SBS column solve latency (µs).
    pub span_us: Histogram,
    /// Slot solves performed.
    pub slot_solves: Counter,
    /// Trivial (empty or fully pinned) slots.
    pub trivial_slots: Counter,
    /// Fast-knapsack warm starts taken.
    pub fastpath_hits: Counter,
    /// PGD iterations.
    pub pgd_iterations: Counter,
    /// PGD projection-oracle invocations.
    pub pgd_projections: Counter,
    /// PGD runs that converged.
    pub pgd_converged: Counter,
    /// PGD runs stopped by the iteration budget.
    pub pgd_budget_exhausted: Counter,
    /// PGD line searches abandoned at the step floor.
    pub pgd_step_floor_hits: Counter,
    /// Slots answered via the sparse nonzero-indexed path.
    pub sparse_slots: Counter,
    /// Slots answered via the dense full-block path.
    pub dense_slots: Counter,
}

impl SubSolveMetrics {
    /// A bundle that records nothing.
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Resolves the bundle's handles under `prefix` (e.g. `"p1"`,
    /// `"p2"`, `"recovery"`). Disabled telemetry yields a disabled
    /// bundle.
    #[must_use]
    pub fn resolve(telemetry: &Telemetry, prefix: &str) -> Self {
        if !telemetry.is_enabled() {
            // Skip the name formatting entirely: disabled resolution is
            // called from hot setup paths and must not allocate.
            return Self::default();
        }
        SubSolveMetrics {
            span_us: telemetry.histogram(&format!("{prefix}_sbs_solve_us")),
            slot_solves: telemetry.counter(&format!("{prefix}_slot_solves_total")),
            trivial_slots: telemetry.counter(&format!("{prefix}_trivial_slots_total")),
            fastpath_hits: telemetry.counter(&format!("{prefix}_fastpath_hits_total")),
            pgd_iterations: telemetry.counter(&format!("{prefix}_pgd_iterations_total")),
            pgd_projections: telemetry.counter(&format!("{prefix}_pgd_projections_total")),
            pgd_converged: telemetry.counter(&format!("{prefix}_pgd_converged_total")),
            pgd_budget_exhausted: telemetry
                .counter(&format!("{prefix}_pgd_budget_exhausted_total")),
            pgd_step_floor_hits: telemetry.counter(&format!("{prefix}_pgd_step_floor_hits_total")),
            sparse_slots: telemetry.counter(&format!("{prefix}_sparse_slots_total")),
            dense_slots: telemetry.counter(&format!("{prefix}_dense_slots_total")),
        }
    }

    /// Whether any handle records anywhere. Workers consult this before
    /// reading the clock for span measurement.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.span_us.is_enabled()
    }

    /// Records one per-SBS column: its solve-stat delta and its
    /// latency. Called by the driving thread during the SBS-order
    /// reduction.
    pub fn record(&self, stats: &SlotSolveStats, elapsed_us: u64) {
        if !self.is_enabled() {
            return;
        }
        self.span_us.observe(elapsed_us);
        self.slot_solves.add(stats.solves);
        self.trivial_slots.add(stats.trivial_slots);
        self.fastpath_hits.add(stats.fastpath_hits);
        self.pgd_iterations.add(stats.pgd_iterations);
        self.pgd_projections.add(stats.pgd_projections);
        self.pgd_converged.add(stats.pgd_converged);
        self.pgd_budget_exhausted.add(stats.pgd_budget_exhausted);
        self.pgd_step_floor_hits.add(stats.pgd_step_floor_hits);
        self.sparse_slots.add(stats.sparse_slots);
        self.dense_slots.add(stats.dense_slots);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_bundle_records_nothing() {
        let m = SubSolveMetrics::disabled();
        assert!(!m.is_enabled());
        m.record(
            &SlotSolveStats {
                solves: 5,
                ..Default::default()
            },
            100,
        );
        assert_eq!(m.slot_solves.get(), 0);
    }

    #[test]
    fn resolved_bundle_accumulates() {
        let tele = Telemetry::enabled();
        let m = SubSolveMetrics::resolve(&tele, "p2");
        assert!(m.is_enabled());
        let stats = SlotSolveStats {
            solves: 3,
            pgd_iterations: 40,
            pgd_converged: 3,
            ..Default::default()
        };
        m.record(&stats, 250);
        m.record(&stats, 750);
        assert_eq!(tele.counter("p2_slot_solves_total").get(), 6);
        assert_eq!(tele.counter("p2_pgd_iterations_total").get(), 80);
        let snap = tele.histogram("p2_sbs_solve_us").snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.max, 750);
    }
}
