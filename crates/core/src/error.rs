//! Error type for the core joint-optimization crate.

use jocal_optim::OptimError;
use jocal_sim::SimError;
use std::error::Error;
use std::fmt;

/// Errors produced while formulating or solving the joint caching and
/// load-balancing problem.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A numerical sub-solver failed.
    Solver(OptimError),
    /// A simulator object was malformed.
    Sim(SimError),
    /// Dimensions of plans/demand/network disagree.
    ShapeMismatch {
        /// Description of the mismatch.
        detail: String,
    },
    /// A produced or supplied plan violates a constraint.
    InfeasiblePlan {
        /// Which constraint is violated.
        constraint: &'static str,
        /// Human-readable location/context.
        detail: String,
    },
    /// The primal-dual loop failed to produce any feasible solution.
    NoFeasibleSolution {
        /// Iterations attempted.
        iterations: usize,
    },
}

impl CoreError {
    /// Convenience constructor for [`CoreError::ShapeMismatch`].
    pub fn shape(detail: impl Into<String>) -> Self {
        CoreError::ShapeMismatch {
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`CoreError::InfeasiblePlan`].
    pub fn infeasible(constraint: &'static str, detail: impl Into<String>) -> Self {
        CoreError::InfeasiblePlan {
            constraint,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Solver(e) => write!(f, "solver failure: {e}"),
            CoreError::Sim(e) => write!(f, "simulator failure: {e}"),
            CoreError::ShapeMismatch { detail } => write!(f, "shape mismatch: {detail}"),
            CoreError::InfeasiblePlan { constraint, detail } => {
                write!(f, "plan violates {constraint}: {detail}")
            }
            CoreError::NoFeasibleSolution { iterations } => {
                write!(f, "no feasible solution found in {iterations} iterations")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Solver(e) => Some(e),
            CoreError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OptimError> for CoreError {
    fn from(e: OptimError) -> Self {
        CoreError::Solver(e)
    }
}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> Self {
        CoreError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::from(OptimError::invalid("boom"));
        assert!(e.to_string().contains("solver failure"));
        assert!(std::error::Error::source(&e).is_some());

        let e = CoreError::shape("T=3 vs T=4");
        assert!(e.to_string().contains("shape mismatch"));
        assert!(std::error::Error::source(&e).is_none());

        let e = CoreError::infeasible("cache capacity", "sbs 0 slot 2");
        assert!(e.to_string().contains("cache capacity"));

        let e = CoreError::NoFeasibleSolution { iterations: 9 };
        assert!(e.to_string().contains('9'));
    }

    #[test]
    fn conversions() {
        let _: CoreError = SimError::config("x", "bad").into();
        let _: CoreError = OptimError::Unbounded { ray: None }.into();
    }
}
