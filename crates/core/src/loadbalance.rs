//! The load-balancing sub-problem `P2` (eq. 19) and its solvers.
//!
//! Given multipliers `μ`, `P2` decomposes per SBS `n` and timeslot `t`:
//!
//! ```text
//! min_y  φ(u_n) + ψ(v_n) + Σ_{m,k} μ_{n,m,k} y_{m,k}
//! s.t.   Σ_{m,k} λ_{m,k} y_{m,k} ≤ B_n,   0 ≤ y ≤ ub,
//! ```
//!
//! where `u_n = Σ_m ω_m Σ_k (1−y)λ` is the residual BS load and
//! `v_n = Σ_m ω̂_m Σ_k yλ` the served SBS load. The objective is smooth
//! and convex; we solve it by projected gradient (FISTA) with the exact
//! box-∩-budget projection from `jocal-optim`.
//!
//! Two entry points:
//!
//! * [`solve_load_all`] — `P2` proper (upper bound `1`, `μ` as linear
//!   term), used inside the primal-dual loop;
//! * [`solve_load_given_cache`] — the *exact* optimal load balancing for
//!   a fixed integer caching plan (`ub = x`, no `μ`), used for primal
//!   recovery, for evaluating baselines fairly, and for the final plan.

use crate::cost::CostModel;
use crate::plan::{CachePlan, LoadPlan};
use crate::problem::ProblemInstance;
use crate::tensor::Tensor4;
use crate::CoreError;
use jocal_optim::pgd::{minimize, PgdOptions};
use jocal_optim::projection::project_box_budget;
use jocal_sim::topology::{ClassId, ContentId, SbsId};

/// Tolerance/iteration budget used for the per-slot convex solves.
fn slot_pgd_options() -> PgdOptions {
    PgdOptions {
        max_iters: 600,
        tol: 1e-7,
        initial_step: 1.0,
        backtrack: 0.5,
        min_step: 1e-16,
        accelerated: true,
    }
}

/// Solves one `(n, t)` slot of `P2`.
///
/// * `omega_bs`/`omega_sbs` — per-class weights `ω`, `ω̂` (length `M`).
/// * `lambda` — demand flattened as `m·K + k` (length `M·K`).
/// * `linear` — linear coefficients (the multipliers `μ`), same layout.
/// * `upper` — per-entry upper bounds (`1` for `P2`, `x_{n,k}` when the
///   cache is fixed).
/// * `bandwidth` — the budget `B_n`.
/// * `warm` — optional warm start.
///
/// Returns `(y, objective)`.
///
/// # Errors
///
/// Returns [`CoreError::ShapeMismatch`] on inconsistent lengths and
/// propagates solver failures.
#[allow(clippy::too_many_arguments)]
pub fn solve_load_slot(
    cost_model: &CostModel,
    omega_bs: &[f64],
    omega_sbs: &[f64],
    lambda: &[f64],
    linear: &[f64],
    upper: &[f64],
    bandwidth: f64,
    warm: Option<&[f64]>,
) -> Result<(Vec<f64>, f64), CoreError> {
    let m_total = omega_bs.len();
    if omega_sbs.len() != m_total {
        return Err(CoreError::shape("omega_sbs length mismatch"));
    }
    if m_total == 0 || lambda.is_empty() {
        return Ok((Vec::new(), 0.0));
    }
    if lambda.len() % m_total != 0 {
        return Err(CoreError::shape(format!(
            "lambda length {} not a multiple of {m_total} classes",
            lambda.len()
        )));
    }
    let n_entries = lambda.len();
    if linear.len() != n_entries || upper.len() != n_entries {
        return Err(CoreError::shape("linear/upper length mismatch"));
    }
    let k_total = n_entries / m_total;

    // Per-entry aggregate coefficients (ω λ toward the BS, ω̂ λ toward the
    // SBS) and the total weighted demand u₀ = Σ ω λ.
    let mut a = vec![0.0; n_entries];
    let mut b = vec![0.0; n_entries];
    for m in 0..m_total {
        for k in 0..k_total {
            let i = m * k_total + k;
            a[i] = omega_bs[m] * lambda[i];
            b[i] = omega_sbs[m] * lambda[i];
        }
    }
    let u0: f64 = a.iter().sum();

    // Entries pinned at 0 by their upper bound (or carrying zero demand
    // and a non-negative price) cannot improve the objective: compress
    // them out. This is a large win when a fixed cache zeroes most items.
    let free: Vec<usize> = (0..n_entries)
        .filter(|&i| upper[i] > 0.0 && (lambda[i] > 0.0 || linear[i] < 0.0))
        .collect();

    if free.is_empty() {
        return Ok((
            vec![0.0; n_entries],
            cost_model.bs_cost.value(u0) + cost_model.sbs_cost.value(0.0),
        ));
    }

    let fa: Vec<f64> = free.iter().map(|&i| a[i]).collect();
    let fb: Vec<f64> = free.iter().map(|&i| b[i]).collect();
    let flinear: Vec<f64> = free.iter().map(|&i| linear[i]).collect();
    let fupper: Vec<f64> = free.iter().map(|&i| upper[i]).collect();
    let flambda: Vec<f64> = free.iter().map(|&i| lambda[i]).collect();

    // Fast path (the paper's evaluation setting): with no SBS-side cost
    // the slot problem is a knapsack-structured scalar fixed point. The
    // closed-form point is optimal up to knapsack-jump corner cases, so
    // it is used as a warm start for a short projected-gradient polish —
    // replacing hundreds of cold iterations with a handful.
    let mut pgd_opts = slot_pgd_options();
    let have_warm = matches!(warm, Some(w0) if w0.len() == n_entries);
    let fwarm: Vec<f64> = if !have_warm
        && fb.iter().all(|&v| v == 0.0)
        && flinear.iter().all(|&v| v >= 0.0)
    {
        let fast = crate::fastslot::solve_bs_only_slot(
            cost_model.bs_cost,
            u0,
            &fa,
            &flinear,
            &flambda,
            &fupper,
            bandwidth,
        );
        pgd_opts.max_iters = 80;
        fast.y
    } else {
        match warm {
            Some(w0) if w0.len() == n_entries => free.iter().map(|&i| w0[i]).collect(),
            _ => vec![0.0; free.len()],
        }
    };

    let bs = cost_model.bs_cost;
    let sbs = cost_model.sbs_cost;
    let objective = {
        let fa = fa.clone();
        let fb = fb.clone();
        let flinear = flinear.clone();
        move |y: &[f64]| -> f64 {
            let served_bs: f64 = fa.iter().zip(y).map(|(ai, yi)| ai * yi).sum();
            let served_sbs: f64 = fb.iter().zip(y).map(|(bi, yi)| bi * yi).sum();
            let lin: f64 = flinear.iter().zip(y).map(|(ci, yi)| ci * yi).sum();
            bs.value(u0 - served_bs) + sbs.value(served_sbs) + lin
        }
    };
    let gradient = {
        let fa = fa.clone();
        let fb = fb.clone();
        let flinear = flinear.clone();
        move |y: &[f64], g: &mut [f64]| {
            let served_bs: f64 = fa.iter().zip(y.iter()).map(|(ai, yi)| ai * yi).sum();
            let served_sbs: f64 = fb.iter().zip(y.iter()).map(|(bi, yi)| bi * yi).sum();
            let dphi = bs.derivative(u0 - served_bs);
            let dpsi = sbs.derivative(served_sbs);
            for i in 0..g.len() {
                g[i] = -dphi * fa[i] + dpsi * fb[i] + flinear[i];
            }
        }
    };

    let lo = vec![0.0; free.len()];
    let project = {
        let fupper = fupper.clone();
        let flambda = flambda.clone();
        move |y: &mut [f64]| {
            let p = project_box_budget(y, &lo, &fupper, &flambda, bandwidth)
                .expect("box-budget projection cannot fail: 0 is feasible");
            y.copy_from_slice(&p);
        }
    };

    let result = minimize(objective, gradient, project, fwarm, pgd_opts)?;
    let mut y = vec![0.0; n_entries];
    for (slot, &i) in free.iter().enumerate() {
        y[i] = result.x[slot];
    }
    Ok((y, result.objective))
}

/// Internal helper gathering the flat per-slot inputs for SBS `n`.
fn slot_inputs(
    problem: &ProblemInstance,
    t: usize,
    n: SbsId,
) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let network = problem.network();
    let sbs = network.sbs(n).expect("validated");
    let k_total = network.num_contents();
    let m_total = sbs.num_classes();
    let mut omega_bs = Vec::with_capacity(m_total);
    let mut omega_sbs = Vec::with_capacity(m_total);
    for class in sbs.classes() {
        omega_bs.push(class.omega_bs);
        omega_sbs.push(class.omega_sbs);
    }
    let mut lambda = vec![0.0; m_total * k_total];
    for m in 0..m_total {
        for k in 0..k_total {
            lambda[m * k_total + k] = problem.demand().lambda(t, n, ClassId(m), ContentId(k));
        }
    }
    (omega_bs, omega_sbs, lambda)
}

/// Solves `P2` over all SBSs and slots given multipliers `mu`.
///
/// Returns the load plan and the `P2` objective
/// `Σ_t (f_t + g_t + Σ μ y)`.
///
/// # Errors
///
/// Propagates sub-solver failures.
pub fn solve_load_all(
    problem: &ProblemInstance,
    mu: &Tensor4,
    warm: Option<&LoadPlan>,
) -> Result<(LoadPlan, f64), CoreError> {
    let network = problem.network();
    let horizon = problem.horizon();
    let k_total = network.num_contents();
    let mut plan = LoadPlan::zeros(network, horizon);
    let mut objective = 0.0;
    for t in 0..horizon {
        for (n, sbs) in network.iter_sbs() {
            let (omega_bs, omega_sbs, lambda) = slot_inputs(problem, t, n);
            let m_total = sbs.num_classes();
            let mut linear = vec![0.0; m_total * k_total];
            for m in 0..m_total {
                for k in 0..k_total {
                    linear[m * k_total + k] = mu.get(t, n, ClassId(m), ContentId(k));
                }
            }
            let upper = vec![1.0; m_total * k_total];
            let warm_slot = warm.map(|w| w.tensor().sbs_slot(t, n));
            let (y, obj) = solve_load_slot(
                problem.cost_model(),
                &omega_bs,
                &omega_sbs,
                &lambda,
                &linear,
                &upper,
                sbs.bandwidth(),
                warm_slot.as_deref(),
            )?;
            plan.tensor_mut().set_sbs_slot(t, n, &y);
            objective += obj;
        }
    }
    Ok((plan, objective))
}

/// Solves the exact optimal load balancing for a **fixed** caching plan:
/// the upper bound of `y_{m,k}` is `x_{n,k}` and there is no multiplier
/// term, so the result is the true `f + g` minimizer subject to all
/// constraints.
///
/// # Errors
///
/// Returns [`CoreError::ShapeMismatch`] if the plan horizon differs and
/// propagates solver failures.
pub fn solve_load_given_cache(
    problem: &ProblemInstance,
    x: &CachePlan,
    warm: Option<&LoadPlan>,
) -> Result<(LoadPlan, f64), CoreError> {
    if x.horizon() != problem.horizon() {
        return Err(CoreError::shape(format!(
            "cache plan horizon {} != problem horizon {}",
            x.horizon(),
            problem.horizon()
        )));
    }
    let network = problem.network();
    let horizon = problem.horizon();
    let k_total = network.num_contents();
    let mut plan = LoadPlan::zeros(network, horizon);
    let mut objective = 0.0;
    for t in 0..horizon {
        for (n, sbs) in network.iter_sbs() {
            let (omega_bs, omega_sbs, lambda) = slot_inputs(problem, t, n);
            let m_total = sbs.num_classes();
            let linear = vec![0.0; m_total * k_total];
            let mut upper = vec![0.0; m_total * k_total];
            for m in 0..m_total {
                for k in 0..k_total {
                    if x.state(t).contains(n, ContentId(k)) {
                        upper[m * k_total + k] = 1.0;
                    }
                }
            }
            let warm_slot = warm.map(|w| w.tensor().sbs_slot(t, n));
            let (y, obj) = solve_load_slot(
                problem.cost_model(),
                &omega_bs,
                &omega_sbs,
                &lambda,
                &linear,
                &upper,
                sbs.bandwidth(),
                warm_slot.as_deref(),
            )?;
            plan.tensor_mut().set_sbs_slot(t, n, &y);
            objective += obj;
        }
    }
    Ok((plan, objective))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::verify_feasible;
    use jocal_sim::demand::DemandTrace;
    use jocal_sim::topology::{MuClass, Network};

    fn simple_net(bandwidth: f64) -> Network {
        Network::builder(2)
            .sbs(
                2,
                bandwidth,
                1.0,
                vec![
                    MuClass::new(1.0, 0.0, 1.0).unwrap(),
                    MuClass::new(2.0, 0.0, 1.0).unwrap(),
                ],
            )
            .unwrap()
            .build()
            .unwrap()
    }

    fn uniform_demand(net: &Network, rate: f64) -> DemandTrace {
        let mut d = DemandTrace::zeros(net, 1);
        for m in 0..2 {
            for k in 0..2 {
                d.set_lambda(0, SbsId(0), ClassId(m), ContentId(k), rate)
                    .unwrap();
            }
        }
        d
    }

    #[test]
    fn unconstrained_slot_offloads_everything() {
        // Huge bandwidth, everything cached: optimal y = 1 everywhere
        // (u → 0 minimizes the quadratic; ω̂ = 0 so SBS serving is free).
        let (y, obj) = solve_load_slot(
            &CostModel::paper(),
            &[1.0, 2.0],
            &[0.0, 0.0],
            &[3.0, 3.0, 3.0, 3.0],
            &[0.0; 4],
            &[1.0; 4],
            1e6,
            None,
        )
        .unwrap();
        for v in &y {
            assert!((v - 1.0).abs() < 1e-4, "y={v}");
        }
        assert!(obj.abs() < 1e-4);
    }

    #[test]
    fn bandwidth_binds_and_prefers_heavy_classes() {
        // Bandwidth only allows half the demand; serving class 1 (ω = 2)
        // reduces u twice as fast, so it should be served first.
        let (y, _) = solve_load_slot(
            &CostModel::paper(),
            &[1.0, 2.0],
            &[0.0, 0.0],
            &[1.0, 1.0, 1.0, 1.0], // λ = 1 each, total 4
            &[0.0; 4],
            &[1.0; 4],
            2.0,
            None,
        )
        .unwrap();
        let class0: f64 = y[0] + y[1];
        let class1: f64 = y[2] + y[3];
        assert!(class1 > class0 + 0.5, "class1={class1} class0={class0}");
        let used: f64 = y.iter().sum();
        assert!((used - 2.0).abs() < 1e-5, "budget should bind, used {used}");
    }

    #[test]
    fn multiplier_discourages_offloading() {
        // With a large μ on every entry, serving from the SBS costs more
        // than it saves: y = 0.
        let (y, obj) = solve_load_slot(
            &CostModel::paper(),
            &[1.0],
            &[0.0],
            &[1.0, 1.0],
            &[1e6, 1e6],
            &[1.0, 1.0],
            10.0,
            None,
        )
        .unwrap();
        assert!(y.iter().all(|&v| v < 1e-6), "{y:?}");
        // objective = φ(u0) = (1·2)² = 4.
        assert!((obj - 4.0).abs() < 1e-6);
    }

    #[test]
    fn upper_bound_zero_blocks_entry() {
        let (y, _) = solve_load_slot(
            &CostModel::paper(),
            &[1.0],
            &[0.0],
            &[5.0, 5.0],
            &[0.0, 0.0],
            &[0.0, 1.0],
            100.0,
            None,
        )
        .unwrap();
        assert!(y[0].abs() < 1e-9);
        assert!((y[1] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn sbs_cost_creates_interior_optimum() {
        // With ω̂ = ω, offloading trades u² for v²; the optimum splits the
        // load: u = v → y = 0.5.
        let (y, _) = solve_load_slot(
            &CostModel::paper(),
            &[1.0],
            &[1.0],
            &[4.0],
            &[0.0],
            &[1.0],
            100.0,
            None,
        )
        .unwrap();
        assert!((y[0] - 0.5).abs() < 1e-4, "y={}", y[0]);
    }

    #[test]
    fn empty_slot_is_trivial() {
        let (y, obj) = solve_load_slot(
            &CostModel::paper(),
            &[],
            &[],
            &[],
            &[],
            &[],
            1.0,
            None,
        )
        .unwrap();
        assert!(y.is_empty());
        assert_eq!(obj, 0.0);
    }

    #[test]
    fn shape_validation() {
        assert!(solve_load_slot(
            &CostModel::paper(),
            &[1.0],
            &[],
            &[1.0],
            &[0.0],
            &[1.0],
            1.0,
            None
        )
        .is_err());
        assert!(solve_load_slot(
            &CostModel::paper(),
            &[1.0, 1.0],
            &[0.0, 0.0],
            &[1.0, 1.0, 1.0],
            &[0.0; 3],
            &[1.0; 3],
            1.0,
            None
        )
        .is_err());
        assert!(solve_load_slot(
            &CostModel::paper(),
            &[1.0],
            &[0.0],
            &[1.0],
            &[0.0, 0.0],
            &[1.0],
            1.0,
            None
        )
        .is_err());
    }

    #[test]
    fn given_cache_respects_coupling_and_is_feasible() {
        let net = simple_net(3.0);
        let demand = uniform_demand(&net, 2.0);
        let problem = ProblemInstance::fresh(net.clone(), demand.clone()).unwrap();
        let mut x = CachePlan::empty(&net, 1);
        x.state_mut(0).set(SbsId(0), ContentId(0), true);
        let (y, _) = solve_load_given_cache(&problem, &x, None).unwrap();
        verify_feasible(&net, &demand, &x, &y).unwrap();
        // Item 1 not cached → y must be 0.
        for m in 0..2 {
            assert!(y.y(0, SbsId(0), ClassId(m), ContentId(1)).abs() < 1e-9);
        }
    }

    #[test]
    fn given_cache_objective_matches_cost_model() {
        let net = simple_net(100.0);
        let demand = uniform_demand(&net, 1.0);
        let problem = ProblemInstance::fresh(net.clone(), demand.clone()).unwrap();
        let mut x = CachePlan::empty(&net, 1);
        x.state_mut(0).set(SbsId(0), ContentId(0), true);
        x.state_mut(0).set(SbsId(0), ContentId(1), true);
        let (y, obj) = solve_load_given_cache(&problem, &x, None).unwrap();
        let model = CostModel::paper();
        let direct = model.f_t(&net, &demand, &y, 0) + model.g_t(&net, &demand, &y, 0);
        assert!((obj - direct).abs() < 1e-6);
    }

    #[test]
    fn warm_start_reaches_same_objective() {
        let net = simple_net(2.0);
        let demand = uniform_demand(&net, 2.0);
        let problem = ProblemInstance::fresh(net.clone(), demand).unwrap();
        let mu = Tensor4::zeros(&net, 1);
        let (y_cold, obj_cold) = solve_load_all(&problem, &mu, None).unwrap();
        let (_, obj_warm) = solve_load_all(&problem, &mu, Some(&y_cold)).unwrap();
        assert!((obj_cold - obj_warm).abs() < 1e-5);
    }
}
