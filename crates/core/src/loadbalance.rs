//! The load-balancing sub-problem `P2` (eq. 19) and its solvers.
//!
//! Given multipliers `μ`, `P2` decomposes per SBS `n` and timeslot `t`:
//!
//! ```text
//! min_y  φ(u_n) + ψ(v_n) + Σ_{m,k} μ_{n,m,k} y_{m,k}
//! s.t.   Σ_{m,k} λ_{m,k} y_{m,k} ≤ B_n,   0 ≤ y ≤ ub,
//! ```
//!
//! where `u_n = Σ_m ω_m Σ_k (1−y)λ` is the residual BS load and
//! `v_n = Σ_m ω̂_m Σ_k yλ` the served SBS load. The objective is smooth
//! and convex; each slot is solved by the engine in
//! [`crate::workspace`] (FISTA with the exact box-∩-budget projection,
//! with the fast-knapsack warm start when applicable).
//!
//! Entry points:
//!
//! * [`solve_load_all`] / [`solve_load_all_with`] — `P2` proper (upper
//!   bound `1`, `μ` as linear term), used inside the primal-dual loop;
//! * [`solve_load_given_cache`] / [`solve_load_given_cache_with`] — the
//!   *exact* optimal load balancing for a fixed integer caching plan
//!   (`ub = x`, no `μ`), used for primal recovery, for evaluating
//!   baselines fairly, and for the final plan;
//! * the `*_into` variants write into a caller-owned [`LoadPlan`],
//!   letting the primal-dual loop run allocation-free across
//!   iterations.
//!
//! All variants fan per-SBS work out according to a [`Parallelism`]
//! knob; results are reduced in SBS order, so every setting produces
//! bitwise identical plans and objectives.

use crate::cost::CostModel;
use crate::observe::SubSolveMetrics;
use crate::plan::{CachePlan, LoadPlan};
use crate::problem::ProblemInstance;
use crate::tensor::Tensor4;
use crate::workspace::{
    parallel_map_with, Parallelism, SbsSubproblem, SlotSolveStats, SlotWorkspace, SparseSlotInput,
};
use crate::CoreError;
use jocal_sim::topology::SbsId;
use std::time::Instant;

/// Solves one `(n, t)` slot of `P2`.
///
/// * `omega_bs`/`omega_sbs` — per-class weights `ω`, `ω̂` (length `M`).
/// * `lambda` — demand flattened as `m·K + k` (length `M·K`).
/// * `linear` — linear coefficients (the multipliers `μ`), same layout.
/// * `upper` — per-entry upper bounds (`1` for `P2`, `x_{n,k}` when the
///   cache is fixed).
/// * `bandwidth` — the budget `B_n`.
/// * `warm` — optional warm start.
///
/// Returns `(y, objective)`. This is the allocating convenience wrapper
/// around [`SlotWorkspace::solve_filled_slot`]; hot paths should hold a
/// workspace instead.
///
/// # Errors
///
/// Returns [`CoreError::ShapeMismatch`] on inconsistent lengths and
/// propagates solver failures.
#[allow(clippy::too_many_arguments)]
pub fn solve_load_slot(
    cost_model: &CostModel,
    omega_bs: &[f64],
    omega_sbs: &[f64],
    lambda: &[f64],
    linear: &[f64],
    upper: &[f64],
    bandwidth: f64,
    warm: Option<&[f64]>,
) -> Result<(Vec<f64>, f64), CoreError> {
    let mut ws = SlotWorkspace::new();
    ws.omega_bs.extend_from_slice(omega_bs);
    ws.omega_sbs.extend_from_slice(omega_sbs);
    ws.lambda.extend_from_slice(lambda);
    ws.linear.extend_from_slice(linear);
    ws.upper.extend_from_slice(upper);
    let use_warm = match warm {
        Some(w) => {
            ws.warm.extend_from_slice(w);
            true
        }
        None => false,
    };
    let mut y = vec![0.0; lambda.len()];
    let objective = ws.solve_filled_slot(cost_model, bandwidth, use_warm, &mut y)?;
    Ok((y, objective))
}

/// Solves the per-SBS column (all slots of SBS `n`) into a fresh flat
/// buffer laid out as `t · block + (m·K + k)`. Returns the buffer, the
/// SBS's summed slot objectives, and the worker's solve-stat delta for
/// the column (merged by the driver in SBS order).
fn solve_sbs_column(
    sub: &SbsSubproblem<'_>,
    ws: &mut SlotWorkspace,
    mu: Option<&Tensor4>,
    x: Option<&CachePlan>,
    warm: Option<&LoadPlan>,
    horizon: usize,
    cost_model: &CostModel,
) -> Result<(Vec<f64>, f64, SlotSolveStats), CoreError> {
    let block = sub.block_len();
    let mut objective = 0.0;
    ws.stats = SlotSolveStats::default();
    sub.fill_weights(ws);
    if sub.problem().sparse_enabled() {
        // Sparse hot path: feed each slot's nonzero entries straight to
        // the compressed solve — no dense demand/linear/upper staging —
        // and collect the solutions *compactly*, one value per indexed
        // entry in slot-then-entry order. The driver scatters them back
        // through the same index. Bit-identical to the dense branch
        // below (see `crate::sparse`).
        let nonzeros = sub.problem().nonzeros();
        let k_total = sub.problem().network().num_contents();
        let n = sub.sbs_id();
        let total: usize = (0..horizon).map(|t| nonzeros.slot(t, n).len()).sum();
        let mut col = vec![0.0; total];
        let mut off = 0;
        for t in 0..horizon {
            let entries = nonzeros.slot(t, n);
            let input = SparseSlotInput {
                k_total,
                entries,
                linear: mu.map(|mu| mu.sbs_slot_slice(t, n)),
                cached: x.map(|x| (x.state(t), n)),
                warm: warm.map(|w| w.tensor().sbs_slot_slice(t, n)),
            };
            objective += ws.solve_sparse_slot(
                cost_model,
                sub.bandwidth(),
                input,
                &mut col[off..off + entries.len()],
            )?;
            off += entries.len();
        }
        let stats = ws.stats.take();
        return Ok((col, objective, stats));
    }
    let mut col = vec![0.0; horizon * block];
    for t in 0..horizon {
        sub.fill_demand(t, ws);
        match mu {
            Some(mu) => sub.fill_linear(mu, t, ws),
            None => sub.fill_linear_zero(ws),
        }
        match x {
            Some(x) => sub.fill_upper_from_cache(x, t, ws),
            None => sub.fill_upper_ones(ws),
        }
        let use_warm = match warm {
            Some(w) => {
                ws.warm.clear();
                ws.warm
                    .extend_from_slice(w.tensor().sbs_slot_slice(t, sub.sbs_id()));
                true
            }
            None => false,
        };
        objective += ws.solve_filled_slot(
            cost_model,
            sub.bandwidth(),
            use_warm,
            &mut col[t * block..(t + 1) * block],
        )?;
    }
    let stats = ws.stats.take();
    Ok((col, objective, stats))
}

/// Shared driver: fans the per-SBS columns out, then scatters them into
/// `out` and reduces the objective in SBS order (deterministic for any
/// [`Parallelism`]).
fn solve_columns_into(
    problem: &ProblemInstance,
    mu: Option<&Tensor4>,
    x: Option<&CachePlan>,
    warm: Option<&LoadPlan>,
    parallelism: Parallelism,
    out: &mut LoadPlan,
    metrics: &SubSolveMetrics,
) -> Result<f64, CoreError> {
    let network = problem.network();
    let horizon = problem.horizon();
    if out.horizon() != horizon || out.tensor().num_sbs() != network.num_sbs() {
        return Err(CoreError::shape("output load plan shape mismatch"));
    }
    let cost_model = problem.cost_model();
    let timed = metrics.is_enabled();
    let results = parallel_map_with(
        parallelism,
        network.num_sbs(),
        SlotWorkspace::new,
        |ws, i| {
            let started = timed.then(Instant::now);
            let sub = SbsSubproblem::new(problem, SbsId(i));
            let res = solve_sbs_column(&sub, ws, mu, x, warm, horizon, cost_model);
            let elapsed_us = started.map_or(0, |s| {
                u64::try_from(s.elapsed().as_micros()).unwrap_or(u64::MAX)
            });
            (res, elapsed_us)
        },
    );
    let mut objective = 0.0;
    let sparse = problem.sparse_enabled().then(|| problem.nonzeros());
    for (i, (res, elapsed_us)) in results.into_iter().enumerate() {
        let (col, obj, stats) = res?;
        metrics.record(&stats, elapsed_us);
        let n = SbsId(i);
        if let Some(nonzeros) = sparse {
            // Compact column: scatter each slot's values through the
            // nonzero index. Positions outside the index stay untouched
            // — they are provably zero at the optimum, and every caller
            // hands in a plan whose off-index positions already hold
            // `0.0` (fresh `LoadPlan::zeros`, or a double-buffer only
            // ever written through this same index).
            let mut off = 0;
            for t in 0..horizon {
                let entries = nonzeros.slot(t, n);
                let slice = out.tensor_mut().sbs_slot_slice_mut(t, n);
                for (j, e) in entries.iter().enumerate() {
                    slice[e.idx as usize] = col[off + j];
                }
                off += entries.len();
            }
        } else {
            let block = out.tensor().sbs_block_len(n);
            for t in 0..horizon {
                out.tensor_mut()
                    .sbs_slot_slice_mut(t, n)
                    .copy_from_slice(&col[t * block..(t + 1) * block]);
            }
        }
        objective += obj;
    }
    Ok(objective)
}

/// Solves `P2` over all SBSs and slots given multipliers `mu`,
/// sequentially. See [`solve_load_all_with`].
///
/// # Errors
///
/// Propagates sub-solver failures.
pub fn solve_load_all(
    problem: &ProblemInstance,
    mu: &Tensor4,
    warm: Option<&LoadPlan>,
) -> Result<(LoadPlan, f64), CoreError> {
    solve_load_all_with(problem, mu, warm, Parallelism::Sequential)
}

/// Solves `P2` over all SBSs and slots given multipliers `mu`, fanning
/// per-SBS work out per `parallelism`.
///
/// Returns the load plan and the `P2` objective
/// `Σ_t (f_t + g_t + Σ μ y)`. The result is identical for every
/// parallelism setting.
///
/// # Errors
///
/// Propagates sub-solver failures.
pub fn solve_load_all_with(
    problem: &ProblemInstance,
    mu: &Tensor4,
    warm: Option<&LoadPlan>,
    parallelism: Parallelism,
) -> Result<(LoadPlan, f64), CoreError> {
    let mut plan = LoadPlan::zeros(problem.network(), problem.horizon());
    let objective = solve_load_all_into(problem, mu, warm, parallelism, &mut plan)?;
    Ok((plan, objective))
}

/// [`solve_load_all_with`] writing into a caller-owned plan (must match
/// the problem's shape), for allocation-free reuse across primal-dual
/// iterations.
///
/// # Errors
///
/// Returns [`CoreError::ShapeMismatch`] if `out` has the wrong shape and
/// propagates sub-solver failures.
pub fn solve_load_all_into(
    problem: &ProblemInstance,
    mu: &Tensor4,
    warm: Option<&LoadPlan>,
    parallelism: Parallelism,
    out: &mut LoadPlan,
) -> Result<f64, CoreError> {
    solve_load_all_into_observed(
        problem,
        mu,
        warm,
        parallelism,
        out,
        &SubSolveMetrics::disabled(),
    )
}

/// [`solve_load_all_into`] recording per-SBS solve spans and PGD
/// counters into `metrics`. The decision output is bit-identical to the
/// unobserved variant: worker counts are merged in SBS order and never
/// feed back into the solve.
///
/// # Errors
///
/// Same contract as [`solve_load_all_into`].
pub fn solve_load_all_into_observed(
    problem: &ProblemInstance,
    mu: &Tensor4,
    warm: Option<&LoadPlan>,
    parallelism: Parallelism,
    out: &mut LoadPlan,
    metrics: &SubSolveMetrics,
) -> Result<f64, CoreError> {
    solve_columns_into(problem, Some(mu), None, warm, parallelism, out, metrics)
}

/// Solves the exact optimal load balancing for a **fixed** caching plan,
/// sequentially. See [`solve_load_given_cache_with`].
///
/// # Errors
///
/// Returns [`CoreError::ShapeMismatch`] if the plan horizon differs and
/// propagates solver failures.
pub fn solve_load_given_cache(
    problem: &ProblemInstance,
    x: &CachePlan,
    warm: Option<&LoadPlan>,
) -> Result<(LoadPlan, f64), CoreError> {
    solve_load_given_cache_with(problem, x, warm, Parallelism::Sequential)
}

/// Solves the exact optimal load balancing for a **fixed** caching plan:
/// the upper bound of `y_{m,k}` is `x_{n,k}` and there is no multiplier
/// term, so the result is the true `f + g` minimizer subject to all
/// constraints. Fans per-SBS work out per `parallelism` with a
/// deterministic reduction.
///
/// # Errors
///
/// Returns [`CoreError::ShapeMismatch`] if the plan horizon differs and
/// propagates solver failures.
pub fn solve_load_given_cache_with(
    problem: &ProblemInstance,
    x: &CachePlan,
    warm: Option<&LoadPlan>,
    parallelism: Parallelism,
) -> Result<(LoadPlan, f64), CoreError> {
    let mut plan = LoadPlan::zeros(problem.network(), problem.horizon());
    let objective = solve_load_given_cache_into(problem, x, warm, parallelism, &mut plan)?;
    Ok((plan, objective))
}

/// [`solve_load_given_cache_with`] writing into a caller-owned plan.
///
/// # Errors
///
/// Returns [`CoreError::ShapeMismatch`] if the plan horizon differs or
/// `out` has the wrong shape, and propagates solver failures.
pub fn solve_load_given_cache_into(
    problem: &ProblemInstance,
    x: &CachePlan,
    warm: Option<&LoadPlan>,
    parallelism: Parallelism,
    out: &mut LoadPlan,
) -> Result<f64, CoreError> {
    solve_load_given_cache_into_observed(
        problem,
        x,
        warm,
        parallelism,
        out,
        &SubSolveMetrics::disabled(),
    )
}

/// [`solve_load_given_cache_into`] recording per-SBS solve spans and
/// PGD counters into `metrics` (see [`solve_load_all_into_observed`]).
///
/// # Errors
///
/// Same contract as [`solve_load_given_cache_into`].
pub fn solve_load_given_cache_into_observed(
    problem: &ProblemInstance,
    x: &CachePlan,
    warm: Option<&LoadPlan>,
    parallelism: Parallelism,
    out: &mut LoadPlan,
    metrics: &SubSolveMetrics,
) -> Result<f64, CoreError> {
    if x.horizon() != problem.horizon() {
        return Err(CoreError::shape(format!(
            "cache plan horizon {} != problem horizon {}",
            x.horizon(),
            problem.horizon()
        )));
    }
    solve_columns_into(problem, None, Some(x), warm, parallelism, out, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::verify_feasible;
    use jocal_sim::demand::DemandTrace;
    use jocal_sim::topology::{ClassId, ContentId, MuClass, Network};

    fn simple_net(bandwidth: f64) -> Network {
        Network::builder(2)
            .sbs(
                2,
                bandwidth,
                1.0,
                vec![
                    MuClass::new(1.0, 0.0, 1.0).unwrap(),
                    MuClass::new(2.0, 0.0, 1.0).unwrap(),
                ],
            )
            .unwrap()
            .build()
            .unwrap()
    }

    fn uniform_demand(net: &Network, rate: f64) -> DemandTrace {
        let mut d = DemandTrace::zeros(net, 1);
        for m in 0..2 {
            for k in 0..2 {
                d.set_lambda(0, SbsId(0), ClassId(m), ContentId(k), rate)
                    .unwrap();
            }
        }
        d
    }

    #[test]
    fn unconstrained_slot_offloads_everything() {
        // Huge bandwidth, everything cached: optimal y = 1 everywhere
        // (u → 0 minimizes the quadratic; ω̂ = 0 so SBS serving is free).
        let (y, obj) = solve_load_slot(
            &CostModel::paper(),
            &[1.0, 2.0],
            &[0.0, 0.0],
            &[3.0, 3.0, 3.0, 3.0],
            &[0.0; 4],
            &[1.0; 4],
            1e6,
            None,
        )
        .unwrap();
        for v in &y {
            assert!((v - 1.0).abs() < 1e-4, "y={v}");
        }
        assert!(obj.abs() < 1e-4);
    }

    #[test]
    fn bandwidth_binds_and_prefers_heavy_classes() {
        // Bandwidth only allows half the demand; serving class 1 (ω = 2)
        // reduces u twice as fast, so it should be served first.
        let (y, _) = solve_load_slot(
            &CostModel::paper(),
            &[1.0, 2.0],
            &[0.0, 0.0],
            &[1.0, 1.0, 1.0, 1.0], // λ = 1 each, total 4
            &[0.0; 4],
            &[1.0; 4],
            2.0,
            None,
        )
        .unwrap();
        let class0: f64 = y[0] + y[1];
        let class1: f64 = y[2] + y[3];
        assert!(class1 > class0 + 0.5, "class1={class1} class0={class0}");
        let used: f64 = y.iter().sum();
        assert!((used - 2.0).abs() < 1e-5, "budget should bind, used {used}");
    }

    #[test]
    fn multiplier_discourages_offloading() {
        // With a large μ on every entry, serving from the SBS costs more
        // than it saves: y = 0.
        let (y, obj) = solve_load_slot(
            &CostModel::paper(),
            &[1.0],
            &[0.0],
            &[1.0, 1.0],
            &[1e6, 1e6],
            &[1.0, 1.0],
            10.0,
            None,
        )
        .unwrap();
        assert!(y.iter().all(|&v| v < 1e-6), "{y:?}");
        // objective = φ(u0) = (1·2)² = 4.
        assert!((obj - 4.0).abs() < 1e-6);
    }

    #[test]
    fn upper_bound_zero_blocks_entry() {
        let (y, _) = solve_load_slot(
            &CostModel::paper(),
            &[1.0],
            &[0.0],
            &[5.0, 5.0],
            &[0.0, 0.0],
            &[0.0, 1.0],
            100.0,
            None,
        )
        .unwrap();
        assert!(y[0].abs() < 1e-9);
        assert!((y[1] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn sbs_cost_creates_interior_optimum() {
        // With ω̂ = ω, offloading trades u² for v²; the optimum splits the
        // load: u = v → y = 0.5.
        let (y, _) = solve_load_slot(
            &CostModel::paper(),
            &[1.0],
            &[1.0],
            &[4.0],
            &[0.0],
            &[1.0],
            100.0,
            None,
        )
        .unwrap();
        assert!((y[0] - 0.5).abs() < 1e-4, "y={}", y[0]);
    }

    #[test]
    fn empty_slot_is_trivial() {
        let (y, obj) =
            solve_load_slot(&CostModel::paper(), &[], &[], &[], &[], &[], 1.0, None).unwrap();
        assert!(y.is_empty());
        assert_eq!(obj, 0.0);
    }

    #[test]
    fn shape_validation() {
        assert!(solve_load_slot(
            &CostModel::paper(),
            &[1.0],
            &[],
            &[1.0],
            &[0.0],
            &[1.0],
            1.0,
            None
        )
        .is_err());
        assert!(solve_load_slot(
            &CostModel::paper(),
            &[1.0, 1.0],
            &[0.0, 0.0],
            &[1.0, 1.0, 1.0],
            &[0.0; 3],
            &[1.0; 3],
            1.0,
            None
        )
        .is_err());
        assert!(solve_load_slot(
            &CostModel::paper(),
            &[1.0],
            &[0.0],
            &[1.0],
            &[0.0, 0.0],
            &[1.0],
            1.0,
            None
        )
        .is_err());
    }

    #[test]
    fn given_cache_respects_coupling_and_is_feasible() {
        let net = simple_net(3.0);
        let demand = uniform_demand(&net, 2.0);
        let problem = ProblemInstance::fresh(net.clone(), demand.clone()).unwrap();
        let mut x = CachePlan::empty(&net, 1);
        x.state_mut(0).set(SbsId(0), ContentId(0), true);
        let (y, _) = solve_load_given_cache(&problem, &x, None).unwrap();
        verify_feasible(&net, &demand, &x, &y).unwrap();
        // Item 1 not cached → y must be 0.
        for m in 0..2 {
            assert!(y.y(0, SbsId(0), ClassId(m), ContentId(1)).abs() < 1e-9);
        }
    }

    #[test]
    fn given_cache_objective_matches_cost_model() {
        let net = simple_net(100.0);
        let demand = uniform_demand(&net, 1.0);
        let problem = ProblemInstance::fresh(net.clone(), demand.clone()).unwrap();
        let mut x = CachePlan::empty(&net, 1);
        x.state_mut(0).set(SbsId(0), ContentId(0), true);
        x.state_mut(0).set(SbsId(0), ContentId(1), true);
        let (y, obj) = solve_load_given_cache(&problem, &x, None).unwrap();
        let model = CostModel::paper();
        let direct = model.f_t(&net, &demand, &y, 0) + model.g_t(&net, &demand, &y, 0);
        assert!((obj - direct).abs() < 1e-6);
    }

    #[test]
    fn warm_start_reaches_same_objective() {
        let net = simple_net(2.0);
        let demand = uniform_demand(&net, 2.0);
        let problem = ProblemInstance::fresh(net.clone(), demand).unwrap();
        let mu = Tensor4::zeros(&net, 1);
        let (y_cold, obj_cold) = solve_load_all(&problem, &mu, None).unwrap();
        let (_, obj_warm) = solve_load_all(&problem, &mu, Some(&y_cold)).unwrap();
        assert!((obj_cold - obj_warm).abs() < 1e-5);
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let net = simple_net(2.0);
        let demand = uniform_demand(&net, 2.0);
        let problem = ProblemInstance::fresh(net.clone(), demand).unwrap();
        let mu = Tensor4::zeros(&net, 1);
        let (y_seq, obj_seq) =
            solve_load_all_with(&problem, &mu, None, Parallelism::Sequential).unwrap();
        for k in [1usize, 2, 8] {
            let (y_par, obj_par) =
                solve_load_all_with(&problem, &mu, None, Parallelism::Threads(k)).unwrap();
            assert_eq!(y_seq, y_par, "threads={k}");
            assert_eq!(obj_seq.to_bits(), obj_par.to_bits(), "threads={k}");
        }
    }

    #[test]
    fn into_variant_rejects_shape_mismatch() {
        let net = simple_net(2.0);
        let demand = uniform_demand(&net, 2.0);
        let problem = ProblemInstance::fresh(net.clone(), demand).unwrap();
        let mu = Tensor4::zeros(&net, 1);
        let mut wrong = LoadPlan::zeros(&net, 2);
        assert!(
            solve_load_all_into(&problem, &mu, None, Parallelism::Sequential, &mut wrong).is_err()
        );
    }
}
