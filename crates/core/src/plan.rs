//! Decision plans: cache placements `X` and load-balancing fractions `Y`.

use crate::tensor::Tensor4;
use crate::CoreError;
use jocal_sim::demand::DemandTrace;
use jocal_sim::topology::{ClassId, ContentId, Network, SbsId};
use serde::{Deserialize, Serialize};

/// Cache contents of every SBS at one instant: `state[n][k] == true` iff
/// content `k` is cached at SBS `n` (the paper's `x_{n,k}`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheState {
    per_sbs: Vec<Vec<bool>>,
}

impl CacheState {
    /// All caches empty (the paper's initial condition `x^t = 0, t ≤ 0`).
    #[must_use]
    pub fn empty(network: &Network) -> Self {
        CacheState {
            per_sbs: network
                .sbss()
                .iter()
                .map(|_| vec![false; network.num_contents()])
                .collect(),
        }
    }

    /// Builds a state from explicit per-SBS boolean vectors.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ShapeMismatch`] if the shape disagrees with
    /// `network`, or [`CoreError::InfeasiblePlan`] if any SBS exceeds its
    /// cache capacity.
    pub fn from_bools(network: &Network, per_sbs: Vec<Vec<bool>>) -> Result<Self, CoreError> {
        if per_sbs.len() != network.num_sbs() {
            return Err(CoreError::shape(format!(
                "{} SBS vectors for a {}-SBS network",
                per_sbs.len(),
                network.num_sbs()
            )));
        }
        for (n, v) in per_sbs.iter().enumerate() {
            if v.len() != network.num_contents() {
                return Err(CoreError::shape(format!(
                    "SBS {n} vector has {} entries for a {}-item catalog",
                    v.len(),
                    network.num_contents()
                )));
            }
            let used = v.iter().filter(|&&b| b).count();
            let cap = network.sbs(SbsId(n))?.cache_capacity();
            if used > cap {
                return Err(CoreError::infeasible(
                    "cache capacity",
                    format!("SBS {n} caches {used} items, capacity {cap}"),
                ));
            }
        }
        Ok(CacheState { per_sbs })
    }

    /// Whether content `k` is cached at SBS `n`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    #[inline]
    #[must_use]
    pub fn contains(&self, n: SbsId, k: ContentId) -> bool {
        self.per_sbs[n.0][k.0]
    }

    /// Sets the cached flag for `(n, k)`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    #[inline]
    pub fn set(&mut self, n: SbsId, k: ContentId, cached: bool) {
        self.per_sbs[n.0][k.0] = cached;
    }

    /// Items cached at SBS `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    #[must_use]
    pub fn cached_items(&self, n: SbsId) -> Vec<ContentId> {
        self.per_sbs[n.0]
            .iter()
            .enumerate()
            .filter_map(|(k, &b)| b.then_some(ContentId(k)))
            .collect()
    }

    /// Number of cached items at SBS `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    #[inline]
    #[must_use]
    pub fn occupancy(&self, n: SbsId) -> usize {
        self.per_sbs[n.0].iter().filter(|&&b| b).count()
    }

    /// Number of SBSs in this state.
    #[inline]
    #[must_use]
    pub fn num_sbs(&self) -> usize {
        self.per_sbs.len()
    }

    /// Catalog size.
    #[inline]
    #[must_use]
    pub fn num_contents(&self) -> usize {
        self.per_sbs.first().map_or(0, Vec::len)
    }

    /// Items newly fetched when moving `prev → self` at SBS `n`, i.e.
    /// `Σ_k (x^t − x^{t−1})⁺` of the replacement cost (eq. 7).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ or `n` is out of range.
    #[must_use]
    pub fn fetches_from(&self, prev: &CacheState, n: SbsId) -> usize {
        assert_eq!(self.per_sbs[n.0].len(), prev.per_sbs[n.0].len());
        self.per_sbs[n.0]
            .iter()
            .zip(&prev.per_sbs[n.0])
            .filter(|&(&now, &before)| now && !before)
            .count()
    }
}

/// A cache placement trajectory `X^1, …, X^T`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CachePlan {
    slots: Vec<CacheState>,
}

impl CachePlan {
    /// A plan of `horizon` all-empty states.
    #[must_use]
    pub fn empty(network: &Network, horizon: usize) -> Self {
        CachePlan {
            slots: (0..horizon).map(|_| CacheState::empty(network)).collect(),
        }
    }

    /// Builds a plan from explicit states.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ShapeMismatch`] when the slot list is empty or
    /// states have inconsistent shapes.
    pub fn from_states(slots: Vec<CacheState>) -> Result<Self, CoreError> {
        let Some(first) = slots.first() else {
            return Err(CoreError::shape("cache plan needs >= 1 slot"));
        };
        let (n, k) = (first.num_sbs(), first.num_contents());
        for (t, s) in slots.iter().enumerate() {
            if s.num_sbs() != n || s.num_contents() != k {
                return Err(CoreError::shape(format!(
                    "slot {t} has shape ({}, {}) expected ({n}, {k})",
                    s.num_sbs(),
                    s.num_contents()
                )));
            }
        }
        Ok(CachePlan { slots })
    }

    /// Number of timeslots.
    #[inline]
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.slots.len()
    }

    /// State at slot `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[inline]
    #[must_use]
    pub fn state(&self, t: usize) -> &CacheState {
        &self.slots[t]
    }

    /// Mutable state at slot `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[inline]
    pub fn state_mut(&mut self, t: usize) -> &mut CacheState {
        &mut self.slots[t]
    }

    /// Iterator over states in time order.
    pub fn iter(&self) -> impl Iterator<Item = &CacheState> {
        self.slots.iter()
    }

    /// Appends a state at the end of the plan.
    pub fn push(&mut self, state: CacheState) {
        self.slots.push(state);
    }

    /// Total item fetches over the horizon starting from `initial`
    /// (the plan-wide `Σ_t Σ_n Σ_k (x^t − x^{t−1})⁺`).
    #[must_use]
    pub fn total_fetches(&self, initial: &CacheState) -> usize {
        let mut prev = initial;
        let mut total = 0usize;
        for state in &self.slots {
            for n in 0..state.num_sbs() {
                total += state.fetches_from(prev, SbsId(n));
            }
            prev = state;
        }
        total
    }
}

/// The load-balancing trajectory `y_{m_n,k}^t ∈ [0, 1]` (fraction of each
/// class's requests served by the local SBS; the BS serves `1 − y`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadPlan {
    tensor: Tensor4,
}

impl LoadPlan {
    /// An all-zero plan (everything served by the BS).
    #[must_use]
    pub fn zeros(network: &Network, horizon: usize) -> Self {
        LoadPlan {
            tensor: Tensor4::zeros(network, horizon),
        }
    }

    /// Wraps an existing tensor.
    #[must_use]
    pub fn from_tensor(tensor: Tensor4) -> Self {
        LoadPlan { tensor }
    }

    /// The SBS-served fraction `y_{m_n,k}^t`.
    #[inline]
    #[must_use]
    pub fn y(&self, t: usize, n: SbsId, m: ClassId, k: ContentId) -> f64 {
        self.tensor.get(t, n, m, k)
    }

    /// The BS-served fraction `z = 1 − y` (eq. 4).
    #[inline]
    #[must_use]
    pub fn z(&self, t: usize, n: SbsId, m: ClassId, k: ContentId) -> f64 {
        1.0 - self.tensor.get(t, n, m, k)
    }

    /// Sets `y_{m_n,k}^t`.
    #[inline]
    pub fn set_y(&mut self, t: usize, n: SbsId, m: ClassId, k: ContentId, value: f64) {
        self.tensor.set(t, n, m, k, value);
    }

    /// The underlying tensor.
    #[inline]
    #[must_use]
    pub fn tensor(&self) -> &Tensor4 {
        &self.tensor
    }

    /// Mutable underlying tensor.
    #[inline]
    pub fn tensor_mut(&mut self) -> &mut Tensor4 {
        &mut self.tensor
    }

    /// Number of timeslots.
    #[inline]
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.tensor.horizon()
    }

    /// SBS bandwidth used at `(t, n)`: `Σ_{m,k} λ y`.
    #[must_use]
    pub fn bandwidth_used(&self, demand: &DemandTrace, t: usize, n: SbsId) -> f64 {
        let mut used = 0.0;
        for m in 0..self.tensor.num_classes(n) {
            for k in 0..self.tensor.num_contents() {
                used += demand.lambda(t, n, ClassId(m), ContentId(k))
                    * self.tensor.get(t, n, ClassId(m), ContentId(k));
            }
        }
        used
    }
}

/// Tolerance used by [`verify_feasible`] for continuous constraints.
pub const FEASIBILITY_TOL: f64 = 1e-6;

/// Checks every constraint of the optimization problem (eq. 1–4, 10, 11)
/// for the pair `(x, y)` against `network`/`demand`.
///
/// # Errors
///
/// Returns the first violated constraint as
/// [`CoreError::InfeasiblePlan`], or [`CoreError::ShapeMismatch`] when
/// the shapes disagree.
pub fn verify_feasible(
    network: &Network,
    demand: &DemandTrace,
    x: &CachePlan,
    y: &LoadPlan,
) -> Result<(), CoreError> {
    if x.horizon() != y.horizon() {
        return Err(CoreError::shape(format!(
            "cache plan horizon {} != load plan horizon {}",
            x.horizon(),
            y.horizon()
        )));
    }
    if x.horizon() > demand.horizon() {
        return Err(CoreError::shape(format!(
            "plan horizon {} exceeds demand horizon {}",
            x.horizon(),
            demand.horizon()
        )));
    }
    for t in 0..x.horizon() {
        let state = x.state(t);
        if state.num_sbs() != network.num_sbs() || state.num_contents() != network.num_contents() {
            return Err(CoreError::shape(format!("slot {t} state shape mismatch")));
        }
        for (n, sbs) in network.iter_sbs() {
            // (1) cache capacity.
            let used = state.occupancy(n);
            if used > sbs.cache_capacity() {
                return Err(CoreError::infeasible(
                    "cache capacity",
                    format!("t={t} {n}: {used} > {}", sbs.cache_capacity()),
                ));
            }
            // (2) bandwidth.
            let bw = y.bandwidth_used(demand, t, n);
            if bw > sbs.bandwidth() + FEASIBILITY_TOL {
                return Err(CoreError::infeasible(
                    "bandwidth",
                    format!("t={t} {n}: {bw:.6} > {}", sbs.bandwidth()),
                ));
            }
            for m in 0..sbs.num_classes() {
                for k in 0..network.num_contents() {
                    let yv = y.y(t, n, ClassId(m), ContentId(k));
                    // (11) box.
                    if !(-FEASIBILITY_TOL..=1.0 + FEASIBILITY_TOL).contains(&yv) {
                        return Err(CoreError::infeasible(
                            "y in [0,1]",
                            format!("t={t} {n} m={m} k={k}: y={yv}"),
                        ));
                    }
                    // (3) coupling y <= x.
                    let xv = if state.contains(n, ContentId(k)) {
                        1.0
                    } else {
                        0.0
                    };
                    if yv > xv + FEASIBILITY_TOL {
                        return Err(CoreError::infeasible(
                            "y <= x",
                            format!("t={t} {n} m={m} k={k}: y={yv} > x={xv}"),
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use jocal_sim::topology::MuClass;

    fn net() -> Network {
        Network::builder(4)
            .sbs(
                2,
                3.0,
                1.0,
                vec![
                    MuClass::new(0.5, 0.0, 4.0).unwrap(),
                    MuClass::new(0.5, 0.0, 4.0).unwrap(),
                ],
            )
            .unwrap()
            .build()
            .unwrap()
    }

    fn uniform_demand(net: &Network, horizon: usize, rate: f64) -> DemandTrace {
        let mut d = DemandTrace::zeros(net, horizon);
        for t in 0..horizon {
            for m in 0..2 {
                for k in 0..4 {
                    d.set_lambda(t, SbsId(0), ClassId(m), ContentId(k), rate)
                        .unwrap();
                }
            }
        }
        d
    }

    #[test]
    fn cache_state_basics() {
        let n = net();
        let mut s = CacheState::empty(&n);
        assert_eq!(s.occupancy(SbsId(0)), 0);
        s.set(SbsId(0), ContentId(2), true);
        assert!(s.contains(SbsId(0), ContentId(2)));
        assert_eq!(s.cached_items(SbsId(0)), vec![ContentId(2)]);
        assert_eq!(s.occupancy(SbsId(0)), 1);
    }

    #[test]
    fn from_bools_validates() {
        let n = net();
        assert!(CacheState::from_bools(&n, vec![vec![true, false, false, false]]).is_ok());
        // Over capacity (C = 2).
        assert!(CacheState::from_bools(&n, vec![vec![true, true, true, false]]).is_err());
        // Wrong catalog width.
        assert!(CacheState::from_bools(&n, vec![vec![true]]).is_err());
        // Wrong SBS count.
        assert!(CacheState::from_bools(&n, vec![]).is_err());
    }

    #[test]
    fn fetches_counted_one_way() {
        let n = net();
        let mut a = CacheState::empty(&n);
        a.set(SbsId(0), ContentId(0), true);
        a.set(SbsId(0), ContentId(1), true);
        let mut b = CacheState::empty(&n);
        b.set(SbsId(0), ContentId(1), true);
        b.set(SbsId(0), ContentId(2), true);
        // b fetches item 2 (item 1 stays, item 0 evicted at no charge).
        assert_eq!(b.fetches_from(&a, SbsId(0)), 1);
        assert_eq!(a.fetches_from(&b, SbsId(0)), 1);
        assert_eq!(a.fetches_from(&a, SbsId(0)), 0);
    }

    #[test]
    fn plan_total_fetches() {
        let n = net();
        let mut plan = CachePlan::empty(&n, 3);
        plan.state_mut(0).set(SbsId(0), ContentId(0), true);
        plan.state_mut(1).set(SbsId(0), ContentId(0), true);
        plan.state_mut(1).set(SbsId(0), ContentId(1), true);
        plan.state_mut(2).set(SbsId(0), ContentId(2), true);
        // t0: fetch {0}; t1: fetch {1}; t2: fetch {2}, drop {0,1}.
        assert_eq!(plan.total_fetches(&CacheState::empty(&n)), 3);
    }

    #[test]
    fn from_states_validates_shape() {
        let n = net();
        assert!(CachePlan::from_states(vec![]).is_err());
        let ok = CachePlan::from_states(vec![CacheState::empty(&n); 2]).unwrap();
        assert_eq!(ok.horizon(), 2);
    }

    #[test]
    fn load_plan_accessors() {
        let n = net();
        let mut y = LoadPlan::zeros(&n, 2);
        y.set_y(1, SbsId(0), ClassId(1), ContentId(3), 0.4);
        assert_eq!(y.y(1, SbsId(0), ClassId(1), ContentId(3)), 0.4);
        assert!((y.z(1, SbsId(0), ClassId(1), ContentId(3)) - 0.6).abs() < 1e-12);
        assert_eq!(y.horizon(), 2);
    }

    #[test]
    fn bandwidth_used_sums_lambda_y() {
        let n = net();
        let d = uniform_demand(&n, 1, 2.0);
        let mut y = LoadPlan::zeros(&n, 1);
        y.set_y(0, SbsId(0), ClassId(0), ContentId(0), 0.5);
        y.set_y(0, SbsId(0), ClassId(1), ContentId(1), 1.0);
        assert!((y.bandwidth_used(&d, 0, SbsId(0)) - (2.0 * 0.5 + 2.0 * 1.0)).abs() < 1e-12);
    }

    #[test]
    fn verify_feasible_accepts_valid_plan() {
        let n = net();
        let d = uniform_demand(&n, 2, 0.5);
        let mut x = CachePlan::empty(&n, 2);
        x.state_mut(0).set(SbsId(0), ContentId(0), true);
        x.state_mut(1).set(SbsId(0), ContentId(0), true);
        let mut y = LoadPlan::zeros(&n, 2);
        y.set_y(0, SbsId(0), ClassId(0), ContentId(0), 1.0);
        verify_feasible(&n, &d, &x, &y).unwrap();
    }

    #[test]
    fn verify_feasible_catches_coupling_violation() {
        let n = net();
        let d = uniform_demand(&n, 1, 0.5);
        let x = CachePlan::empty(&n, 1);
        let mut y = LoadPlan::zeros(&n, 1);
        y.set_y(0, SbsId(0), ClassId(0), ContentId(0), 0.5);
        let err = verify_feasible(&n, &d, &x, &y).unwrap_err();
        assert!(matches!(
            err,
            CoreError::InfeasiblePlan {
                constraint: "y <= x",
                ..
            }
        ));
    }

    #[test]
    fn verify_feasible_catches_bandwidth_violation() {
        let n = net(); // bandwidth 3
        let d = uniform_demand(&n, 1, 2.0);
        let mut x = CachePlan::empty(&n, 1);
        x.state_mut(0).set(SbsId(0), ContentId(0), true);
        x.state_mut(0).set(SbsId(0), ContentId(1), true);
        let mut y = LoadPlan::zeros(&n, 1);
        // 2 classes × 2 items × λ=2 × y=1 = 8 > 3.
        for m in 0..2 {
            for k in 0..2 {
                y.set_y(0, SbsId(0), ClassId(m), ContentId(k), 1.0);
            }
        }
        let err = verify_feasible(&n, &d, &x, &y).unwrap_err();
        assert!(matches!(
            err,
            CoreError::InfeasiblePlan {
                constraint: "bandwidth",
                ..
            }
        ));
    }

    #[test]
    fn verify_feasible_catches_box_violation() {
        let n = net();
        let d = uniform_demand(&n, 1, 0.1);
        let mut x = CachePlan::empty(&n, 1);
        x.state_mut(0).set(SbsId(0), ContentId(0), true);
        let mut y = LoadPlan::zeros(&n, 1);
        y.set_y(0, SbsId(0), ClassId(0), ContentId(0), 1.5);
        assert!(verify_feasible(&n, &d, &x, &y).is_err());
    }

    #[test]
    fn verify_feasible_catches_horizon_mismatch() {
        let n = net();
        let d = uniform_demand(&n, 2, 0.1);
        let x = CachePlan::empty(&n, 2);
        let y = LoadPlan::zeros(&n, 1);
        assert!(matches!(
            verify_feasible(&n, &d, &x, &y),
            Err(CoreError::ShapeMismatch { .. })
        ));
    }
}
