//! Distributed per-SBS solver — the paper's stated future work
//! (Section VII: "we plan to develop distributed algorithms").
//!
//! The objective (eq. 9) is a sum of per-SBS terms and every constraint
//! (eq. 1–3) involves exactly one SBS, so the joint problem decomposes
//! **exactly**: each SBS can run Algorithm 1 on its own restriction
//! (its classes, demand and cache state) with no coordination, and the
//! concatenation of the per-SBS optima is a global optimum. This module
//! implements that decomposition; a test in `tests/` verifies it
//! produces the same cost as the centralized solver.
//!
//! Beyond fidelity, the decomposition is the practical deployment story:
//! each SBS's mobile-computing board solves a problem whose size is
//! independent of the number of SBSs in the cell. Locally, the solver
//! mirrors that deployment by fanning the per-SBS Algorithm 1 instances
//! out over threads (the [`PrimalDualOptions::parallelism`] knob);
//! per-SBS results are merged in SBS order, so the combined plan is
//! identical for every worker count.

use crate::accounting::{evaluate_plan, CostBreakdown};
use crate::plan::{CachePlan, CacheState, LoadPlan};
use crate::primal_dual::{PrimalDualOptions, PrimalDualSolver};
use crate::problem::ProblemInstance;
use crate::workspace::parallel_map;
use crate::CoreError;
use jocal_sim::topology::{ClassId, ContentId, SbsId};

/// Result of a distributed solve.
#[derive(Debug, Clone)]
pub struct DistributedSolution {
    /// Combined caching plan across SBSs.
    pub cache_plan: CachePlan,
    /// Combined load plan across SBSs.
    pub load_plan: LoadPlan,
    /// Cost decomposition of the combined plan.
    pub breakdown: CostBreakdown,
    /// Sum of the per-SBS dual lower bounds (a valid global bound).
    pub lower_bound: f64,
    /// Largest per-SBS relative duality gap.
    pub max_gap: f64,
    /// Per-SBS iteration counts.
    pub iterations: Vec<usize>,
}

/// Distributed solver: one independent Algorithm 1 instance per SBS.
#[derive(Debug, Clone, Default)]
pub struct DistributedSolver {
    options: PrimalDualOptions,
}

impl DistributedSolver {
    /// Creates a solver with per-SBS primal-dual options.
    #[must_use]
    pub fn new(options: PrimalDualOptions) -> Self {
        DistributedSolver { options }
    }

    /// Solves `problem` by per-SBS decomposition, fanning the
    /// independent per-SBS solves out per
    /// [`PrimalDualOptions::parallelism`]. Each single-SBS sub-solve
    /// caps its own inner fan-out at one worker, so workers never nest.
    ///
    /// # Errors
    ///
    /// Propagates restriction and sub-solver failures.
    pub fn solve(&self, problem: &ProblemInstance) -> Result<DistributedSolution, CoreError> {
        let network = problem.network();
        let horizon = problem.horizon();

        let results = parallel_map(self.options.parallelism, network.num_sbs(), |i| {
            let n = SbsId(i);
            // Build the single-SBS restriction.
            let sub_network = network.restrict_to(n)?;
            let sub_demand = problem.demand().restrict_to(n);
            let mut sub_initial = CacheState::empty(&sub_network);
            for k in 0..network.num_contents() {
                if problem.initial_cache().contains(n, ContentId(k)) {
                    sub_initial.set(SbsId(0), ContentId(k), true);
                }
            }
            let sub_problem =
                ProblemInstance::new(sub_network, sub_demand, *problem.cost_model(), sub_initial)?;
            PrimalDualSolver::new(self.options).solve(&sub_problem)
        });

        let mut cache_plan = CachePlan::empty(network, horizon);
        let mut load_plan = LoadPlan::zeros(network, horizon);
        let mut lower_bound = 0.0;
        let mut max_gap: f64 = 0.0;
        let mut iterations = Vec::with_capacity(network.num_sbs());
        for (i, res) in results.into_iter().enumerate() {
            let solution = res?;
            let n = SbsId(i);
            let sbs = network.sbs(n)?;
            lower_bound += solution.lower_bound;
            max_gap = max_gap.max(solution.gap);
            iterations.push(solution.iterations);

            // Scatter the sub-plan into the global plan (fixed SBS order:
            // the merge is deterministic for any worker count).
            for t in 0..horizon {
                for k in 0..network.num_contents() {
                    let cached = solution
                        .cache_plan
                        .state(t)
                        .contains(SbsId(0), ContentId(k));
                    cache_plan.state_mut(t).set(n, ContentId(k), cached);
                }
                for m in 0..sbs.num_classes() {
                    for k in 0..network.num_contents() {
                        let y = solution.load_plan.y(t, SbsId(0), ClassId(m), ContentId(k));
                        load_plan.set_y(t, n, ClassId(m), ContentId(k), y);
                    }
                }
            }
        }

        let breakdown = evaluate_plan(problem, &cache_plan, &load_plan);
        Ok(DistributedSolution {
            cache_plan,
            load_plan,
            breakdown,
            lower_bound,
            max_gap,
            iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::verify_feasible;
    use jocal_sim::scenario::ScenarioConfig;

    fn multi_sbs_problem(seed: u64) -> ProblemInstance {
        let cfg = ScenarioConfig {
            num_sbs: 3,
            ..ScenarioConfig::tiny()
        };
        let s = cfg.build(seed).unwrap();
        ProblemInstance::fresh(s.network, s.demand).unwrap()
    }

    #[test]
    fn distributed_solution_is_feasible() {
        let problem = multi_sbs_problem(4);
        let sol = DistributedSolver::new(PrimalDualOptions {
            max_iterations: 30,
            ..Default::default()
        })
        .solve(&problem)
        .unwrap();
        verify_feasible(
            problem.network(),
            problem.demand(),
            &sol.cache_plan,
            &sol.load_plan,
        )
        .unwrap();
        assert_eq!(sol.iterations.len(), 3);
        assert!(sol.lower_bound <= sol.breakdown.total() + 1e-6);
    }

    #[test]
    fn distributed_matches_centralized() {
        let problem = multi_sbs_problem(6);
        let opts = PrimalDualOptions {
            max_iterations: 60,
            ..Default::default()
        };
        let central = PrimalDualSolver::new(opts).solve(&problem).unwrap();
        let distributed = DistributedSolver::new(opts).solve(&problem).unwrap();
        let c = central.breakdown.total();
        let d = distributed.breakdown.total();
        assert!(
            (c - d).abs() <= 0.03 * c.max(d),
            "centralized {c} vs distributed {d}"
        );
    }
}
