//! The flight recorder: a bounded, crash-safe ring of capture frames.
//!
//! [`FlightRecorder`] is a cheap clonable handle in the same style as
//! [`jocal_telemetry::Telemetry`]: the disabled default is a single
//! `Option` check and allocates nothing on any path (asserted by the
//! counting-allocator bench), so it can live on the serving hot path
//! unconditionally. Enabled recorders write either to memory (replay
//! re-execution, tests) or to a capture directory.
//!
//! # On-disk layout and crash safety
//!
//! A capture directory holds:
//!
//! - `header.json` — the self-describing [`CaptureHeader`], written
//!   and flushed at recorder creation, so even a capture that crashes
//!   before its first frame identifies itself.
//! - `frames-NNNNNN.jsonl` — frame segments, one JSON frame per line,
//!   flushed per frame. The ring keeps the newest [`SEGMENTS`]
//!   completed segments plus the one being written and deletes older
//!   ones, bounding disk use while always retaining at least
//!   `capacity` frames once that many have been recorded.
//! - `trigger.jsonl` — appended [`TriggerRecord`]s, flushed per
//!   record.
//!
//! Because every line is flushed before the recorder moves on, a
//! crash (or `kill -9`) loses at most the line being written;
//! [`crate::Capture::load`] tolerates exactly one torn trailing line
//! in the newest segment and rejects corruption anywhere else.

use crate::frame::{CaptureHeader, Frame, TriggerRecord};
use jocal_telemetry::{Counter, Telemetry};
use std::collections::VecDeque;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Completed segments retained alongside the one being written.
pub const SEGMENTS: usize = 4;

/// Upper bound on buffered request-id tags awaiting their frame.
const MAX_PENDING_TAGS: usize = 1024;

/// Request-id tags kept for trigger records.
const RECENT_TAGS: usize = 8;

/// Cheap clonable recorder handle; the default is disabled and free.
#[derive(Clone, Default)]
pub struct FlightRecorder {
    inner: Option<Arc<Inner>>,
}

struct Inner {
    header: CaptureHeader,
    frames_total: Counter,
    bytes_total: Counter,
    dropped_total: Counter,
    telemetry: Telemetry,
    state: Mutex<RecState>,
}

struct RecState {
    sink: Sink,
    pending_tags: VecDeque<(u64, String)>,
    recent_tags: VecDeque<String>,
    frames: u64,
    triggers: Vec<TriggerRecord>,
}

enum Sink {
    Memory {
        ring: VecDeque<Frame>,
        capacity: usize,
    },
    Dir {
        dir: PathBuf,
        seg: BufWriter<File>,
        seg_index: u64,
        seg_frames: u64,
        frames_per_seg: u64,
    },
}

impl fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("frames-{index:06}.jsonl"))
}

impl FlightRecorder {
    /// A recorder that records nothing; every operation is a single
    /// `None` branch with no allocation.
    #[must_use]
    pub fn disabled() -> Self {
        FlightRecorder { inner: None }
    }

    /// Whether this handle records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// An in-memory ring keeping the newest `capacity` frames. Used by
    /// replay re-execution and tests; counters are inert.
    #[must_use]
    pub fn in_memory(header: CaptureHeader, capacity: usize) -> Self {
        let mut header = header;
        header.capacity = capacity as u64;
        FlightRecorder {
            inner: Some(Arc::new(Inner {
                header,
                frames_total: Counter::disabled(),
                bytes_total: Counter::disabled(),
                dropped_total: Counter::disabled(),
                telemetry: Telemetry::disabled(),
                state: Mutex::new(RecState {
                    sink: Sink::Memory {
                        ring: VecDeque::new(),
                        capacity: capacity.max(1),
                    },
                    pending_tags: VecDeque::new(),
                    recent_tags: VecDeque::new(),
                    frames: 0,
                    triggers: Vec::new(),
                }),
            })),
        }
    }

    /// A recorder writing a capture directory at `dir`, retaining at
    /// least the newest `capacity` frames. The header is written and
    /// flushed immediately so a crashed capture still identifies
    /// itself. `flightrec_*` counters resolve against `telemetry`.
    ///
    /// # Errors
    ///
    /// Fails when the directory or header cannot be created.
    pub fn to_dir(
        dir: impl AsRef<Path>,
        header: CaptureHeader,
        capacity: usize,
        telemetry: &Telemetry,
    ) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let capacity = capacity.max(1);
        let mut header = header;
        header.capacity = capacity as u64;
        let header_json = serde_json::to_string_pretty(&header)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        let mut hf = File::create(dir.join("header.json"))?;
        hf.write_all(header_json.as_bytes())?;
        hf.write_all(b"\n")?;
        hf.sync_all()?;
        let frames_per_seg = (capacity as u64).div_ceil(SEGMENTS as u64).max(1);
        let seg = BufWriter::new(File::create(segment_path(&dir, 0))?);
        Ok(FlightRecorder {
            inner: Some(Arc::new(Inner {
                header,
                frames_total: telemetry.counter("flightrec_frames_total"),
                bytes_total: telemetry.counter("flightrec_bytes"),
                dropped_total: telemetry.counter("flightrec_frames_dropped"),
                telemetry: telemetry.clone(),
                state: Mutex::new(RecState {
                    sink: Sink::Dir {
                        dir,
                        seg,
                        seg_index: 0,
                        seg_frames: 0,
                        frames_per_seg,
                    },
                    pending_tags: VecDeque::new(),
                    recent_tags: VecDeque::new(),
                    frames: 0,
                    triggers: Vec::new(),
                }),
            })),
        })
    }

    /// The capture header, when enabled.
    #[must_use]
    pub fn header(&self) -> Option<&CaptureHeader> {
        self.inner.as_deref().map(|inner| &inner.header)
    }

    /// Records the frame produced by `build`. The closure only runs
    /// when the recorder is enabled, so the disabled path neither
    /// allocates nor touches the frame fields.
    pub fn record_with<F: FnOnce() -> Frame>(&self, build: F) {
        let Some(inner) = &self.inner else { return };
        let mut frame = build();
        let Ok(mut st) = inner.state.lock() else {
            inner.dropped_total.incr();
            return;
        };
        // Attach the most recent ingest tag addressed to this slot;
        // tags for slots the ring already passed are dropped.
        while st
            .pending_tags
            .front()
            .is_some_and(|(slot, _)| *slot < frame.slot)
        {
            st.pending_tags.pop_front();
        }
        if st
            .pending_tags
            .front()
            .is_some_and(|(slot, _)| *slot == frame.slot)
        {
            frame.tag = st.pending_tags.pop_front().map(|(_, tag)| tag);
        }
        st.frames += 1;
        inner.frames_total.incr();
        match &mut st.sink {
            Sink::Memory { ring, capacity } => {
                if ring.len() == *capacity {
                    ring.pop_front();
                }
                ring.push_back(frame);
            }
            Sink::Dir {
                dir,
                seg,
                seg_index,
                seg_frames,
                frames_per_seg,
            } => {
                let line = match serde_json::to_string(&frame) {
                    Ok(line) => line,
                    Err(_) => {
                        inner.dropped_total.incr();
                        return;
                    }
                };
                let write = seg
                    .write_all(line.as_bytes())
                    .and_then(|()| seg.write_all(b"\n"))
                    .and_then(|()| seg.flush());
                if write.is_err() {
                    inner.dropped_total.incr();
                    return;
                }
                inner.bytes_total.add(line.len() as u64 + 1);
                *seg_frames += 1;
                if *seg_frames >= *frames_per_seg {
                    // Rotate: start a fresh segment, drop the oldest
                    // beyond the retention window.
                    *seg_index += 1;
                    *seg_frames = 0;
                    match File::create(segment_path(dir, *seg_index)) {
                        Ok(f) => *seg = BufWriter::new(f),
                        Err(_) => {
                            inner.dropped_total.incr();
                            return;
                        }
                    }
                    if let Some(old) = seg_index.checked_sub(SEGMENTS as u64 + 1) {
                        let _ = std::fs::remove_file(segment_path(dir, old));
                    }
                }
            }
        }
    }

    /// Notes that `slot` was delivered by the request tagged `tag`
    /// (gateway ingest). The tag is attached to the slot's frame when
    /// it is recorded. No-op (and no allocation) when disabled.
    pub fn tag_slot(&self, slot: u64, tag: &str) {
        let Some(inner) = &self.inner else { return };
        let Ok(mut st) = inner.state.lock() else {
            return;
        };
        if st.pending_tags.len() == MAX_PENDING_TAGS {
            st.pending_tags.pop_front();
        }
        st.pending_tags.push_back((slot, tag.to_string()));
        if st.recent_tags.len() == RECENT_TAGS {
            st.recent_tags.pop_front();
        }
        st.recent_tags.push_back(tag.to_string());
    }

    /// Appends a trigger record (SLO breach, ratio watchdog,
    /// constraint violation, worker panic) and bumps
    /// `flightrec_dumps_total{trigger=kind}`. `detail` is only
    /// rendered when the recorder is enabled, so callers can pass
    /// `format_args!` without allocating on the disabled path.
    pub fn trigger(&self, kind: &str, slot: Option<u64>, detail: fmt::Arguments<'_>) {
        let Some(inner) = &self.inner else { return };
        let Ok(mut st) = inner.state.lock() else {
            return;
        };
        let record = TriggerRecord {
            kind: kind.to_string(),
            slot,
            detail: detail.to_string(),
            frames_recorded: st.frames,
            recent_tags: st.recent_tags.iter().cloned().collect(),
        };
        inner
            .telemetry
            .counter_with("flightrec_dumps_total", "trigger", kind)
            .incr();
        if let Sink::Dir { dir, .. } = &st.sink {
            if let Ok(line) = serde_json::to_string(&record) {
                let appended = OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(dir.join("trigger.jsonl"))
                    .and_then(|mut f| {
                        f.write_all(line.as_bytes())?;
                        f.write_all(b"\n")?;
                        f.sync_all()
                    });
                if appended.is_err() {
                    inner.dropped_total.incr();
                }
            }
        }
        st.triggers.push(record);
    }

    /// Frames currently retained, oldest first. For in-memory
    /// recorders this is the ring; for directory recorders read the
    /// capture back with [`crate::Capture::load`] instead (returns
    /// empty here).
    #[must_use]
    pub fn snapshot(&self) -> Vec<Frame> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let Ok(st) = inner.state.lock() else {
            return Vec::new();
        };
        match &st.sink {
            Sink::Memory { ring, .. } => ring.iter().cloned().collect(),
            Sink::Dir { .. } => Vec::new(),
        }
    }

    /// Triggers recorded so far, in order.
    #[must_use]
    pub fn triggers(&self) -> Vec<TriggerRecord> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        inner
            .state
            .lock()
            .map(|st| st.triggers.clone())
            .unwrap_or_default()
    }

    /// Total frames recorded (including frames the ring has evicted).
    #[must_use]
    pub fn frames_recorded(&self) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        inner.state.lock().map(|st| st.frames).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::Capture;
    use crate::frame::{B64, H64};

    fn frame(slot: u64) -> Frame {
        Frame {
            slot,
            requests: slot + 1,
            sbs_served: B64(slot as f64),
            ..Frame::default()
        }
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = FlightRecorder::disabled();
        assert!(!rec.is_enabled());
        rec.record_with(|| unreachable!("closure must not run when disabled"));
        rec.tag_slot(0, "jocal-1");
        rec.trigger("slo_breach", None, format_args!("unused"));
        assert!(rec.snapshot().is_empty());
        assert!(rec.triggers().is_empty());
        assert_eq!(rec.frames_recorded(), 0);
    }

    #[test]
    fn memory_ring_keeps_newest_capacity_frames() {
        let rec = FlightRecorder::in_memory(CaptureHeader::new("p", "s"), 3);
        for slot in 0..7 {
            rec.record_with(|| frame(slot));
        }
        let frames = rec.snapshot();
        assert_eq!(
            frames.iter().map(|f| f.slot).collect::<Vec<_>>(),
            vec![4, 5, 6]
        );
        assert_eq!(rec.frames_recorded(), 7);
    }

    #[test]
    fn tags_attach_to_their_slot_and_stale_tags_drop() {
        let rec = FlightRecorder::in_memory(CaptureHeader::new("p", "s"), 8);
        rec.tag_slot(0, "req-a");
        rec.tag_slot(2, "req-b");
        rec.record_with(|| frame(0));
        rec.record_with(|| frame(1));
        rec.record_with(|| frame(2));
        let frames = rec.snapshot();
        assert_eq!(frames[0].tag.as_deref(), Some("req-a"));
        assert_eq!(frames[1].tag, None);
        assert_eq!(frames[2].tag.as_deref(), Some("req-b"));
        // A tag for an already-passed slot is discarded, not misfiled.
        rec.tag_slot(1, "req-late");
        rec.record_with(|| frame(3));
        assert_eq!(rec.snapshot()[3].tag, None);
    }

    #[test]
    fn dir_ring_rotates_segments_and_retains_capacity() {
        let dir = std::env::temp_dir().join(format!(
            "jocal-flightrec-rot-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let telemetry = Telemetry::enabled();
        let rec =
            FlightRecorder::to_dir(&dir, CaptureHeader::new("p", "s"), 8, &telemetry).unwrap();
        // 8 frames/ring -> 2 frames/segment; 40 frames laps the ring
        // several times over.
        for slot in 0..40 {
            rec.record_with(|| frame(slot));
        }
        rec.trigger("ratio_watchdog", Some(39), format_args!("ratio {}", 3.0));
        let capture = Capture::load(&dir).unwrap();
        assert!(
            capture.frames.len() >= 8,
            "retention keeps at least capacity frames, got {}",
            capture.frames.len()
        );
        let last = capture.frames.last().unwrap();
        assert_eq!(last.slot, 39, "newest frame survives rotation");
        // Frames are contiguous and oldest-first.
        for pair in capture.frames.windows(2) {
            assert_eq!(pair[1].slot, pair[0].slot + 1);
        }
        assert_eq!(capture.triggers.len(), 1);
        assert_eq!(capture.triggers[0].kind, "ratio_watchdog");
        assert_eq!(capture.triggers[0].frames_recorded, 40);
        // Old segments are actually deleted.
        let segs = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with("frames-"))
            .count();
        assert!(segs <= SEGMENTS + 1, "{segs} segments retained");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn header_survives_a_capture_with_no_frames() {
        let dir = std::env::temp_dir().join(format!(
            "jocal-flightrec-hdr-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let telemetry = Telemetry::disabled();
        let mut header = CaptureHeader::new("RHC", "rhc");
        header.seed = H64(17);
        let rec = FlightRecorder::to_dir(&dir, header, 16, &telemetry).unwrap();
        drop(rec);
        let capture = Capture::load(&dir).unwrap();
        assert_eq!(capture.header.seed, H64(17));
        assert_eq!(capture.header.capacity, 16);
        assert!(capture.frames.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_trailing_line_is_tolerated() {
        let dir = std::env::temp_dir().join(format!(
            "jocal-flightrec-torn-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let telemetry = Telemetry::disabled();
        let rec =
            FlightRecorder::to_dir(&dir, CaptureHeader::new("p", "s"), 100, &telemetry).unwrap();
        for slot in 0..5 {
            rec.record_with(|| frame(slot));
        }
        drop(rec);
        // Simulate a crash mid-write: truncate the newest segment so
        // its last line is torn.
        let seg = segment_path(&dir, 0);
        let contents = std::fs::read_to_string(&seg).unwrap();
        let cut = contents.len() - 10;
        std::fs::write(&seg, &contents[..cut]).unwrap();
        let capture = Capture::load(&dir).unwrap();
        assert_eq!(capture.frames.len(), 4, "only the torn frame is lost");
        assert_eq!(capture.frames.last().unwrap().slot, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
