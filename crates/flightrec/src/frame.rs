//! Capture frame format: the per-slot record the recorder persists and
//! the replay engine re-derives.
//!
//! Everything a frame stores is either exact integer state or an f64
//! round-tripped through [`B64`] (the raw bit pattern as 16 hex
//! digits), so a capture written on one build and parsed on another
//! reconstructs bit-identical floats — the property the whole replay
//! contract rests on. JSON's shortest-round-trip float rendering would
//! also survive a round trip, but hex bits make the intent explicit
//! and keep perturbed-capture diffs human-readable down to the ulp.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// An `f64` that serializes as its IEEE-754 bit pattern in hex.
///
/// `B64(1.5)` renders as `"3ff8000000000000"`. Comparison is on bits,
/// so `-0.0 != 0.0` and NaN payloads are preserved — a frame diff
/// reports exactly what the engine computed, not what compares equal.
#[derive(Debug, Clone, Copy, Default)]
pub struct B64(pub f64);

impl B64 {
    /// The wrapped float.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }

    /// The raw bit pattern.
    #[must_use]
    pub fn bits(self) -> u64 {
        self.0.to_bits()
    }
}

impl From<f64> for B64 {
    fn from(v: f64) -> Self {
        B64(v)
    }
}

impl PartialEq for B64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.to_bits() == other.0.to_bits()
    }
}

impl Eq for B64 {}

impl fmt::Display for B64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({:016x})", self.0, self.0.to_bits())
    }
}

impl Serialize for B64 {
    fn to_value(&self) -> Value {
        Value::Str(format!("{:016x}", self.0.to_bits()))
    }
}

impl Deserialize for B64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => {
                let bits = u64::from_str_radix(s, 16)
                    .map_err(|_| DeError::new(format!("invalid f64 bit pattern {s:?}")))?;
                Ok(B64(f64::from_bits(bits)))
            }
            // Tolerate plain numbers (hand-edited captures).
            Value::Float(f) => Ok(B64(*f)),
            Value::Int(i) => Ok(B64(*i as f64)),
            other => Err(DeError::expected("hex f64 bits", other)),
        }
    }
}

/// A `u64` that serializes as 16 hex digits.
///
/// Derived cell seeds are hashes spanning the full 64-bit space, which
/// JSON's signed-integer representation cannot round-trip; hex strings
/// can, and match the [`B64`] convention.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct H64(pub u64);

impl H64 {
    /// The wrapped integer.
    #[must_use]
    pub fn get(self) -> u64 {
        self.0
    }
}

impl From<u64> for H64 {
    fn from(v: u64) -> Self {
        H64(v)
    }
}

impl fmt::Display for H64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Serialize for H64 {
    fn to_value(&self) -> Value {
        Value::Str(format!("{:016x}", self.0))
    }
}

impl Deserialize for H64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => {
                let bits = u64::from_str_radix(s, 16)
                    .map_err(|_| DeError::new(format!("invalid u64 hex pattern {s:?}")))?;
                Ok(H64(bits))
            }
            // Tolerate plain integers (hand-edited captures); negative
            // values reinterpret as the original two's-complement bits.
            Value::Int(i) => Ok(H64(*i as u64)),
            other => Err(DeError::expected("hex u64", other)),
        }
    }
}

/// One realized-demand nonzero: the flattened `(class, content)` index
/// and its arrival rate, mirroring `jocal_core::sparse::NonzeroEntry`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandEntry {
    /// Flattened index `m * K + k`.
    pub idx: u32,
    /// Arrival rate at that coordinate.
    pub lambda: B64,
}

/// Per-slot cost decomposition, bit-exact.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CostFrame {
    /// BS operating cost `f_t`.
    pub bs_operating: B64,
    /// SBS operating cost `g_t`.
    pub sbs_operating: B64,
    /// Cache replacement cost `h(x_{t-1}, x_t)`.
    pub replacement: B64,
    /// Number of newly fetched contents.
    pub replacement_count: u64,
}

/// Snapshot of the competitive-ratio tracker after the slot, present
/// when the serving run has `--ratio` enabled and the slot completed a
/// block (mirrors `jocal_serve::RatioRecord`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatioFrame {
    /// Completed dual-bound blocks so far.
    pub blocks: u64,
    /// Slots covered by completed blocks.
    pub covered_slots: u64,
    /// Realized online cost over covered slots.
    pub realized_cost: B64,
    /// Dual lower bound over covered slots.
    pub lower_bound: B64,
    /// Running empirical competitive ratio, if the bound is positive.
    pub ratio: Option<B64>,
    /// Whether the ratio exceeds the paper's 2.618 guarantee.
    pub exceeds_bound: bool,
}

/// One slot of recorded engine state: what came in, what the policy
/// decided, and what it cost.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Absolute slot index.
    pub slot: u64,
    /// Request id that delivered this slot (gateway ingest), if any.
    pub tag: Option<String>,
    /// Realized demand per SBS, sparse (`demand[n]` for SBS `n`).
    pub demand: Vec<Vec<DemandEntry>>,
    /// FNV-1a fold over the predicted window's f64 bits, recomputable
    /// at replay because the noise model is a stateless hash.
    pub pred_digest: String,
    /// Cached content ids per SBS after the decision.
    pub cache: Vec<Vec<u32>>,
    /// Dispatched load at the demand support, parallel to `demand`
    /// (`load[n][i]` pairs with `demand[n][i]`).
    pub load: Vec<Vec<B64>>,
    /// Slot cost decomposition.
    pub cost: CostFrame,
    /// Requests dispatched this slot.
    pub requests: u64,
    /// Requests served at SBSs.
    pub sbs_served: B64,
    /// Requests spilled from SBS to BS by per-request sampling.
    pub spilled: B64,
    /// Requests served at the BS.
    pub bs_served: B64,
    /// SBSs whose load the repair pass had to scale.
    pub repair_scaled_sbs: u64,
    /// Wall-clock decision time in microseconds (diagnostic only —
    /// excluded from replay comparison).
    pub solve_us: u64,
    /// Ratio-tracker snapshot, when a block completed this slot.
    pub ratio: Option<RatioFrame>,
}

/// Self-describing capture header: everything `jocal replay` needs to
/// rebuild the exact engine configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaptureHeader {
    /// Format marker, always `"jocal-flightrec"`.
    pub magic: String,
    /// Format version.
    pub version: u32,
    /// Human-readable policy label (e.g. `"CHC(r=3)"`).
    pub policy: String,
    /// CLI scheme name the replay parses (e.g. `"chc"`).
    pub scheme: String,
    /// Commitment level for CHC-style schemes.
    pub commitment: u64,
    /// Cell index within a multi-cell run.
    pub cell: u64,
    /// Engine seed (policy + dispatch RNG). Hex-encoded on disk: cell
    /// seeds are derived hashes that use the full 64-bit space, which
    /// JSON's i64 integers cannot carry.
    pub seed: H64,
    /// Prediction-noise seed (hex-encoded on disk, like [`seed`]).
    ///
    /// [`seed`]: CaptureHeader::seed
    pub noise_seed: H64,
    /// Prediction-noise magnitude `eta`.
    pub eta: B64,
    /// Prediction window length `w`.
    pub window: u64,
    /// Declared run horizon, if the source declared one.
    pub horizon: Option<u64>,
    /// Whether the per-slot cost ledger was enabled.
    pub ledger: bool,
    /// Ratio-tracker block length `B`, when enabled.
    pub ratio_block: Option<u64>,
    /// Ring capacity the recorder was configured with.
    pub capacity: u64,
    /// Scenario configuration (serialized `ScenarioConfig`), when the
    /// run was scenario-driven; replay rebuilds the network from it.
    pub scenario: Option<Value>,
    /// Crate version of the recording build.
    pub build_version: String,
    /// Git commit of the recording build.
    pub build_git_sha: String,
    /// Build profile (debug/release) of the recording build.
    pub build_profile: String,
}

/// The header `magic` marker.
pub const MAGIC: &str = "jocal-flightrec";

/// The current capture format version.
pub const FORMAT_VERSION: u32 = 1;

impl CaptureHeader {
    /// A header with the format markers set and everything else at a
    /// neutral default; callers fill in the run parameters.
    #[must_use]
    pub fn new(policy: impl Into<String>, scheme: impl Into<String>) -> Self {
        CaptureHeader {
            magic: MAGIC.to_string(),
            version: FORMAT_VERSION,
            policy: policy.into(),
            scheme: scheme.into(),
            commitment: 1,
            cell: 0,
            seed: H64(0),
            noise_seed: H64(0),
            eta: B64(0.0),
            window: 1,
            horizon: None,
            ledger: false,
            ratio_block: None,
            capacity: 0,
            scenario: None,
            build_version: String::new(),
            build_git_sha: String::new(),
            build_profile: String::new(),
        }
    }
}

/// A trigger event appended to a capture when a watchdog fires: SLO
/// breach, ratio watchdog, constraint violation, or worker panic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TriggerRecord {
    /// Trigger kind (`slo_breach`, `ratio_watchdog`,
    /// `constraint_violation`, `worker_panic`).
    pub kind: String,
    /// Slot the trigger fired at, when slot-scoped.
    pub slot: Option<u64>,
    /// Human-readable detail.
    pub detail: String,
    /// Frames recorded up to the trigger.
    pub frames_recorded: u64,
    /// Most recent request-id tags seen before the trigger.
    pub recent_tags: Vec<String>,
}

/// First point where a replayed run diverges from its capture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Divergence {
    /// Slot of the first differing frame.
    pub slot: u64,
    /// SBS index, when the differing field is per-SBS.
    pub sbs: Option<u64>,
    /// Name of the first differing field.
    pub field: String,
    /// Captured value, rendered.
    pub captured: String,
    /// Replayed value, rendered.
    pub replayed: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot {} ", self.slot)?;
        if let Some(n) = self.sbs {
            write!(f, "sbs {n} ")?;
        }
        write!(
            f,
            "field {}: captured {} != replayed {}",
            self.field, self.captured, self.replayed
        )
    }
}

/// Folds one f64 bit pattern into an FNV-1a style digest accumulator.
#[must_use]
pub fn fold_bits(acc: u64, bits: u64) -> u64 {
    let mut h = acc;
    for shift in [0u32, 16, 32, 48] {
        h = (h ^ ((bits >> shift) & 0xffff)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The digest seed (FNV-1a offset basis).
pub const DIGEST_SEED: u64 = 0xcbf2_9ce4_8422_2325;

macro_rules! diverge {
    ($slot:expr, $sbs:expr, $field:expr, $a:expr, $b:expr) => {
        return Some(Divergence {
            slot: $slot,
            sbs: $sbs,
            field: $field.to_string(),
            captured: format!("{}", $a),
            replayed: format!("{}", $b),
        })
    };
}

/// Compares two frames field by field, returning the first difference.
///
/// `solve_us` (wall clock) and `tag` (transport metadata) are
/// excluded: replay re-executes decisions, not timing or ingest.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn diff_frames(captured: &Frame, replayed: &Frame) -> Option<Divergence> {
    let slot = captured.slot;
    if captured.slot != replayed.slot {
        diverge!(slot, None, "slot", captured.slot, replayed.slot);
    }
    if captured.demand.len() != replayed.demand.len() {
        diverge!(
            slot,
            None,
            "demand.num_sbs",
            captured.demand.len(),
            replayed.demand.len()
        );
    }
    for (n, (a, b)) in captured.demand.iter().zip(&replayed.demand).enumerate() {
        let n64 = Some(n as u64);
        if a.len() != b.len() {
            diverge!(slot, n64, "demand.nonzeros", a.len(), b.len());
        }
        for (ea, eb) in a.iter().zip(b) {
            if ea.idx != eb.idx {
                diverge!(slot, n64, "demand.idx", ea.idx, eb.idx);
            }
            if ea.lambda != eb.lambda {
                diverge!(slot, n64, "demand.lambda", ea.lambda, eb.lambda);
            }
        }
    }
    if captured.pred_digest != replayed.pred_digest {
        diverge!(
            slot,
            None,
            "pred_digest",
            captured.pred_digest,
            replayed.pred_digest
        );
    }
    if captured.cache.len() != replayed.cache.len() {
        diverge!(
            slot,
            None,
            "cache.num_sbs",
            captured.cache.len(),
            replayed.cache.len()
        );
    }
    for (n, (a, b)) in captured.cache.iter().zip(&replayed.cache).enumerate() {
        if a != b {
            diverge!(
                slot,
                Some(n as u64),
                "cache",
                format!("{a:?}"),
                format!("{b:?}")
            );
        }
    }
    if captured.load.len() != replayed.load.len() {
        diverge!(
            slot,
            None,
            "load.num_sbs",
            captured.load.len(),
            replayed.load.len()
        );
    }
    for (n, (a, b)) in captured.load.iter().zip(&replayed.load).enumerate() {
        let n64 = Some(n as u64);
        if a.len() != b.len() {
            diverge!(slot, n64, "load.len", a.len(), b.len());
        }
        for (ya, yb) in a.iter().zip(b) {
            if ya != yb {
                diverge!(slot, n64, "load.y", ya, yb);
            }
        }
    }
    if captured.cost.bs_operating != replayed.cost.bs_operating {
        diverge!(
            slot,
            None,
            "cost.bs_operating",
            captured.cost.bs_operating,
            replayed.cost.bs_operating
        );
    }
    if captured.cost.sbs_operating != replayed.cost.sbs_operating {
        diverge!(
            slot,
            None,
            "cost.sbs_operating",
            captured.cost.sbs_operating,
            replayed.cost.sbs_operating
        );
    }
    if captured.cost.replacement != replayed.cost.replacement {
        diverge!(
            slot,
            None,
            "cost.replacement",
            captured.cost.replacement,
            replayed.cost.replacement
        );
    }
    if captured.cost.replacement_count != replayed.cost.replacement_count {
        diverge!(
            slot,
            None,
            "cost.replacement_count",
            captured.cost.replacement_count,
            replayed.cost.replacement_count
        );
    }
    if captured.requests != replayed.requests {
        diverge!(slot, None, "requests", captured.requests, replayed.requests);
    }
    if captured.sbs_served != replayed.sbs_served {
        diverge!(
            slot,
            None,
            "sbs_served",
            captured.sbs_served,
            replayed.sbs_served
        );
    }
    if captured.spilled != replayed.spilled {
        diverge!(slot, None, "spilled", captured.spilled, replayed.spilled);
    }
    if captured.bs_served != replayed.bs_served {
        diverge!(
            slot,
            None,
            "bs_served",
            captured.bs_served,
            replayed.bs_served
        );
    }
    if captured.repair_scaled_sbs != replayed.repair_scaled_sbs {
        diverge!(
            slot,
            None,
            "repair_scaled_sbs",
            captured.repair_scaled_sbs,
            replayed.repair_scaled_sbs
        );
    }
    match (&captured.ratio, &replayed.ratio) {
        (None, None) => {}
        (Some(_), None) => diverge!(slot, None, "ratio", "present", "absent"),
        (None, Some(_)) => diverge!(slot, None, "ratio", "absent", "present"),
        (Some(a), Some(b)) => {
            if a.blocks != b.blocks {
                diverge!(slot, None, "ratio.blocks", a.blocks, b.blocks);
            }
            if a.covered_slots != b.covered_slots {
                diverge!(
                    slot,
                    None,
                    "ratio.covered_slots",
                    a.covered_slots,
                    b.covered_slots
                );
            }
            if a.realized_cost != b.realized_cost {
                diverge!(
                    slot,
                    None,
                    "ratio.realized_cost",
                    a.realized_cost,
                    b.realized_cost
                );
            }
            if a.lower_bound != b.lower_bound {
                diverge!(
                    slot,
                    None,
                    "ratio.lower_bound",
                    a.lower_bound,
                    b.lower_bound
                );
            }
            match (a.ratio, b.ratio) {
                (None, None) => {}
                (Some(ra), Some(rb)) if ra == rb => {}
                (ra, rb) => diverge!(
                    slot,
                    None,
                    "ratio.ratio",
                    ra.map_or_else(|| "none".to_string(), |v| v.to_string()),
                    rb.map_or_else(|| "none".to_string(), |v| v.to_string())
                ),
            }
            if a.exceeds_bound != b.exceeds_bound {
                diverge!(
                    slot,
                    None,
                    "ratio.exceeds_bound",
                    a.exceeds_bound,
                    b.exceeds_bound
                );
            }
        }
    }
    None
}

/// First divergence across two frame sequences (in slot order), or
/// `None` when they are bit-identical on every compared field.
#[must_use]
pub fn first_divergence(captured: &[Frame], replayed: &[Frame]) -> Option<Divergence> {
    for (a, b) in captured.iter().zip(replayed) {
        if let Some(d) = diff_frames(a, b) {
            return Some(d);
        }
    }
    if captured.len() != replayed.len() {
        let slot = captured
            .len()
            .min(replayed.len())
            .checked_sub(1)
            .map_or(0, |i| captured[i].slot + 1);
        return Some(Divergence {
            slot,
            sbs: None,
            field: "frame_count".to_string(),
            captured: captured.len().to_string(),
            replayed: replayed.len().to_string(),
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b64_round_trips_exact_bit_patterns() {
        for v in [
            0.0,
            -0.0,
            1.5,
            -1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::NEG_INFINITY,
            f64::NAN,
            f64::from_bits(0xffff_ffff_ffff_ffff),
        ] {
            let b = B64(v);
            let json = serde_json::to_string(&b).unwrap();
            let back: B64 = serde_json::from_str(&json).unwrap();
            assert_eq!(b.bits(), back.bits(), "bits drifted for {v}");
        }
        // -0.0 and 0.0 are distinct at the bit level.
        assert_ne!(B64(0.0), B64(-0.0));
        assert_eq!(B64(0.0), B64(0.0));
    }

    #[test]
    fn frame_round_trips_through_json() {
        let frame = Frame {
            slot: 42,
            tag: Some("jocal-00ab".to_string()),
            demand: vec![
                vec![DemandEntry {
                    idx: 7,
                    lambda: B64(0.25),
                }],
                vec![],
            ],
            pred_digest: "deadbeefdeadbeef".to_string(),
            cache: vec![vec![1, 3], vec![]],
            load: vec![vec![B64(0.125)], vec![]],
            cost: CostFrame {
                bs_operating: B64(1.5),
                sbs_operating: B64(-0.0),
                replacement: B64(2.0),
                replacement_count: 3,
            },
            requests: 10,
            sbs_served: B64(6.0),
            spilled: B64(1.0),
            bs_served: B64(4.0),
            repair_scaled_sbs: 1,
            solve_us: 123,
            ratio: Some(RatioFrame {
                blocks: 2,
                covered_slots: 20,
                realized_cost: B64(100.0),
                lower_bound: B64(80.0),
                ratio: Some(B64(1.25)),
                exceeds_bound: false,
            }),
        };
        let json = serde_json::to_string(&frame).unwrap();
        let back: Frame = serde_json::from_str(&json).unwrap();
        assert_eq!(frame, back);
    }

    #[test]
    fn header_round_trips_through_json() {
        let mut header = CaptureHeader::new("CHC(r=3)", "chc");
        header.seed = H64(0xdead_beef_dead_beef);
        header.noise_seed = H64(7);
        header.eta = B64(0.2);
        header.window = 3;
        header.horizon = Some(100);
        header.ledger = true;
        header.ratio_block = Some(10);
        header.scenario = Some(Value::Object(vec![("num_sbs".to_string(), Value::Int(4))]));
        let json = serde_json::to_string_pretty(&header).unwrap();
        let back: CaptureHeader = serde_json::from_str(&json).unwrap();
        assert_eq!(header, back);
        assert_eq!(back.magic, MAGIC);
    }

    #[test]
    fn diff_reports_first_divergence_with_slot_sbs_field() {
        let mut a = Frame {
            slot: 5,
            ..Frame::default()
        };
        a.demand = vec![vec![DemandEntry {
            idx: 3,
            lambda: B64(1.0),
        }]];
        let mut b = a.clone();
        assert!(diff_frames(&a, &b).is_none());
        b.demand[0][0].lambda = B64(1.0 + f64::EPSILON);
        let d = diff_frames(&a, &b).expect("one-ulp difference is detected");
        assert_eq!(d.slot, 5);
        assert_eq!(d.sbs, Some(0));
        assert_eq!(d.field, "demand.lambda");
        // solve_us and tag are excluded from comparison.
        b = a.clone();
        b.solve_us = 999;
        b.tag = Some("other".to_string());
        assert!(diff_frames(&a, &b).is_none());
    }

    #[test]
    fn sequence_diff_reports_frame_count_mismatch() {
        let frames: Vec<Frame> = (0..3)
            .map(|slot| Frame {
                slot,
                ..Frame::default()
            })
            .collect();
        assert!(first_divergence(&frames, &frames).is_none());
        let d = first_divergence(&frames, &frames[..2]).expect("length mismatch detected");
        assert_eq!(d.field, "frame_count");
        assert_eq!(d.captured, "3");
        assert_eq!(d.replayed, "2");
    }
}
