//! Black-box flight recorder and deterministic incident replay.
//!
//! The serving stack is deterministic end to end — a seed, a scenario,
//! and a policy fully determine every decision, and the parity suites
//! assert it bit for bit. This crate converts that guarantee into an
//! operational tool: [`FlightRecorder`] captures a bounded, crash-safe
//! ring of per-slot [`Frame`]s (realized demand in the sparse
//! `SlotNonzeros` encoding, a predictor digest, the policy's cache and
//! load decisions, cost/dispatch/ratio state) under a self-describing
//! [`CaptureHeader`] carrying seeds, scenario, and build metadata.
//! `jocal replay` re-executes a capture through the real solver stack
//! and asserts bit-identical decisions; `jocal inspect` summarizes
//! what the recorder saw around a trigger.
//!
//! Like the rest of the observability layer, the disabled recorder is
//! free: every operation on [`FlightRecorder::disabled`] is a single
//! `Option` check with no allocation, asserted by the
//! counting-allocator bench in `jocal-bench`.

pub mod capture;
pub mod frame;
pub mod recorder;

pub use capture::{Capture, CaptureError};
pub use frame::{
    diff_frames, first_divergence, fold_bits, CaptureHeader, CostFrame, DemandEntry, Divergence,
    Frame, RatioFrame, TriggerRecord, B64, DIGEST_SEED, FORMAT_VERSION, H64, MAGIC,
};
pub use recorder::{FlightRecorder, SEGMENTS};
