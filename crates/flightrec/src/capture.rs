//! Reading a capture directory back: header, frames, triggers.

use crate::frame::{CaptureHeader, Frame, TriggerRecord, FORMAT_VERSION, MAGIC};
use std::fmt;
use std::path::{Path, PathBuf};

/// Error loading or validating a capture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaptureError {
    /// Filesystem failure.
    Io(String),
    /// Malformed header or frame JSON.
    Parse(String),
    /// Structurally valid JSON that violates the capture format.
    Format(String),
}

impl fmt::Display for CaptureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaptureError::Io(m) => write!(f, "capture io error: {m}"),
            CaptureError::Parse(m) => write!(f, "capture parse error: {m}"),
            CaptureError::Format(m) => write!(f, "capture format error: {m}"),
        }
    }
}

impl std::error::Error for CaptureError {}

/// A fully loaded capture.
#[derive(Debug, Clone)]
pub struct Capture {
    /// The self-describing header.
    pub header: CaptureHeader,
    /// Retained frames, oldest first, contiguous by slot.
    pub frames: Vec<Frame>,
    /// Trigger records, in append order.
    pub triggers: Vec<TriggerRecord>,
}

impl Capture {
    /// Loads a capture directory written by
    /// [`crate::FlightRecorder::to_dir`].
    ///
    /// Crash tolerance: exactly one torn (unparseable, newline-less
    /// tail) line at the end of the newest segment is dropped, since
    /// the recorder flushes line-by-line and a crash can lose at most
    /// the line in flight. A parse failure anywhere else is an error.
    ///
    /// # Errors
    ///
    /// Returns [`CaptureError`] on missing/corrupt files, a wrong
    /// magic/version, or non-contiguous frame slots.
    pub fn load(dir: impl AsRef<Path>) -> Result<Self, CaptureError> {
        let dir = dir.as_ref();
        let header_path = dir.join("header.json");
        let header_text = std::fs::read_to_string(&header_path)
            .map_err(|e| CaptureError::Io(format!("{}: {e}", header_path.display())))?;
        let header: CaptureHeader = serde_json::from_str(&header_text)
            .map_err(|e| CaptureError::Parse(format!("header.json: {e}")))?;
        if header.magic != MAGIC {
            return Err(CaptureError::Format(format!(
                "bad magic {:?} (expected {MAGIC:?})",
                header.magic
            )));
        }
        if header.version != FORMAT_VERSION {
            return Err(CaptureError::Format(format!(
                "unsupported capture version {} (this build reads {FORMAT_VERSION})",
                header.version
            )));
        }

        let mut segments: Vec<(u64, PathBuf)> = Vec::new();
        let entries = std::fs::read_dir(dir)
            .map_err(|e| CaptureError::Io(format!("{}: {e}", dir.display())))?;
        for entry in entries {
            let entry = entry.map_err(|e| CaptureError::Io(e.to_string()))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(index) = name
                .strip_prefix("frames-")
                .and_then(|rest| rest.strip_suffix(".jsonl"))
            {
                let index: u64 = index.parse().map_err(|_| {
                    CaptureError::Format(format!("unexpected segment name {name:?}"))
                })?;
                segments.push((index, entry.path()));
            }
        }
        segments.sort_unstable_by_key(|(index, _)| *index);

        let mut frames: Vec<Frame> = Vec::new();
        let newest = segments.last().map(|(index, _)| *index);
        for (index, path) in &segments {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CaptureError::Io(format!("{}: {e}", path.display())))?;
            let is_newest = Some(*index) == newest;
            let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
            for (i, line) in lines.iter().enumerate() {
                match serde_json::from_str::<Frame>(line) {
                    Ok(frame) => frames.push(frame),
                    // Only the final line of the newest segment may be
                    // torn by a crash; the recorder flushes per line.
                    Err(_) if is_newest && i + 1 == lines.len() && !text.ends_with('\n') => {}
                    Err(e) => {
                        return Err(CaptureError::Parse(format!(
                            "{} line {}: {e}",
                            path.display(),
                            i + 1
                        )));
                    }
                }
            }
        }
        for pair in frames.windows(2) {
            if pair[1].slot != pair[0].slot + 1 {
                return Err(CaptureError::Format(format!(
                    "frames are not contiguous: slot {} follows slot {}",
                    pair[1].slot, pair[0].slot
                )));
            }
        }

        let mut triggers = Vec::new();
        let trigger_path = dir.join("trigger.jsonl");
        if trigger_path.exists() {
            let text = std::fs::read_to_string(&trigger_path)
                .map_err(|e| CaptureError::Io(format!("{}: {e}", trigger_path.display())))?;
            let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
            for (i, line) in lines.iter().enumerate() {
                match serde_json::from_str::<TriggerRecord>(line) {
                    Ok(record) => triggers.push(record),
                    Err(_) if i + 1 == lines.len() && !text.ends_with('\n') => {}
                    Err(e) => {
                        return Err(CaptureError::Parse(format!(
                            "{} line {}: {e}",
                            trigger_path.display(),
                            i + 1
                        )));
                    }
                }
            }
        }

        Ok(Capture {
            header,
            frames,
            triggers,
        })
    }

    /// Slot range `[first, last]` of the retained frames, if any.
    #[must_use]
    pub fn slot_range(&self) -> Option<(u64, u64)> {
        match (self.frames.first(), self.frames.last()) {
            (Some(first), Some(last)) => Some((first.slot, last.slot)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_directory_is_an_io_error() {
        let err = Capture::load("/nonexistent/jocal-capture").unwrap_err();
        assert!(matches!(err, CaptureError::Io(_)), "{err}");
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let dir = std::env::temp_dir().join(format!(
            "jocal-flightrec-magic-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut header = CaptureHeader::new("p", "s");
        header.magic = "not-a-capture".to_string();
        std::fs::write(
            dir.join("header.json"),
            serde_json::to_string(&header).unwrap(),
        )
        .unwrap();
        let err = Capture::load(&dir).unwrap_err();
        assert!(matches!(err, CaptureError::Format(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_before_the_tail_is_an_error() {
        let dir = std::env::temp_dir().join(format!(
            "jocal-flightrec-corrupt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let header = CaptureHeader::new("p", "s");
        std::fs::write(
            dir.join("header.json"),
            serde_json::to_string(&header).unwrap(),
        )
        .unwrap();
        // A garbage line followed by a valid newline-terminated tail is
        // corruption, not a crash artifact.
        std::fs::write(dir.join("frames-000000.jsonl"), "garbage\n").unwrap();
        let err = Capture::load(&dir).unwrap_err();
        assert!(matches!(err, CaptureError::Parse(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
