//! [`NetworkDemandSource`]: a [`DemandSource`] fed over the wire.
//!
//! The source is the consumer end of a [`crate::ring`] slot ring: HTTP
//! workers push parsed demand batches in, the serving cell pulls slots
//! out. Pops **block** while the ring is empty and open — the sliding
//! window's fill loop must see exactly the same slot sequence it would
//! read from a [`jocal_serve::source::TraceSource`], full look-ahead
//! windows included, which is what makes gateway-fed runs bit-identical
//! to in-process replays of the same trace.

use crate::ring::SlotQueue;
use jocal_flightrec::FlightRecorder;
use jocal_serve::source::DemandSource;
use jocal_serve::ServeError;
use jocal_sim::demand::DemandTrace;
use jocal_telemetry::{FieldValue, Telemetry};

/// Streams demand slots from a bounded ingestion ring.
///
/// With an expected slot count the source reports a planning horizon
/// through [`DemandSource::len_hint`] (matching what a finite trace
/// would report) and terminates by itself after delivering that many
/// slots. Without one the serving cell must bound the run via
/// `max_slots`, and the stream ends when the ring is closed (drain).
///
/// With attribution wired ([`Self::with_attribution`]), every slot
/// that carries a request tag emits one `slot_ingest` event linking
/// `{request_id, cell, slot}` — the cross-layer joint between an HTTP
/// 202 and the serving decision it caused. Events never feed back into
/// decisions, so attribution cannot perturb the slot stream.
#[derive(Debug)]
pub struct NetworkDemandSource {
    queue: SlotQueue,
    expected: Option<usize>,
    delivered: usize,
    telemetry: Telemetry,
    recorder: FlightRecorder,
    cell: u64,
}

impl NetworkDemandSource {
    /// Wraps the consumer end of a slot ring. The stream ends when the
    /// ring is closed and drained.
    #[must_use]
    pub fn new(queue: SlotQueue) -> Self {
        NetworkDemandSource {
            queue,
            expected: None,
            delivered: 0,
            telemetry: Telemetry::disabled(),
            recorder: FlightRecorder::disabled(),
            cell: 0,
        }
    }

    /// Attaches a flight recorder: tagged slots register their request
    /// id with it, so the capture frame for slot `t` carries the id of
    /// the HTTP request that delivered it.
    #[must_use]
    pub fn with_recorder(mut self, recorder: FlightRecorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Declares the number of slots the network will deliver: the
    /// source reports it as the planning horizon and stops after that
    /// many slots even if producers keep pushing. An early drain can
    /// still end the stream short.
    #[must_use]
    pub fn with_expected_slots(mut self, slots: usize) -> Self {
        self.expected = Some(slots);
        self
    }

    /// Enables request attribution: tagged slots emit `slot_ingest`
    /// events naming the request, this cell, and the slot index.
    #[must_use]
    pub fn with_attribution(mut self, telemetry: &Telemetry, cell: usize) -> Self {
        self.telemetry = telemetry.clone();
        self.cell = cell as u64;
        self
    }

    /// Slots delivered to the serving cell so far.
    #[must_use]
    pub fn delivered(&self) -> usize {
        self.delivered
    }
}

impl DemandSource for NetworkDemandSource {
    fn len_hint(&self) -> Option<usize> {
        self.expected
    }

    fn next_slot(&mut self, out: &mut DemandTrace) -> Result<bool, ServeError> {
        if self.expected.is_some_and(|cap| self.delivered >= cap) {
            return Ok(false);
        }
        match self.queue.pop_blocking_tagged() {
            Some((slot, tag)) => {
                out.copy_slot_from(0, &slot, 0)?;
                if let Some(tag) = tag {
                    self.recorder.tag_slot(self.delivered as u64, &tag);
                    self.telemetry.event(
                        "slot_ingest",
                        &[
                            ("request_id", FieldValue::Text(tag.to_string())),
                            ("cell", FieldValue::U64(self.cell)),
                            ("slot", FieldValue::U64(self.delivered as u64)),
                        ],
                    );
                }
                self.delivered += 1;
                Ok(true)
            }
            None => Ok(false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::bounded_slot_ring;
    use jocal_sim::scenario::ScenarioConfig;
    use jocal_sim::{ClassId, ContentId, SbsId};
    use jocal_telemetry::Gauge;

    #[test]
    fn delivers_pushed_slots_in_order_then_ends_on_close() {
        let network = ScenarioConfig::tiny().build_network(3).unwrap();
        let (tx, rx) = bounded_slot_ring(8, Gauge::disabled());
        let mut batch = Vec::new();
        for v in 1..=3 {
            let mut slot = DemandTrace::zeros(&network, 1);
            slot.set_lambda(0, SbsId(0), ClassId(0), ContentId(0), f64::from(v))
                .unwrap();
            batch.push(slot);
        }
        tx.try_push_batch(batch).unwrap();
        tx.close();
        let mut source = NetworkDemandSource::new(rx);
        assert_eq!(source.len_hint(), None);
        let mut out = DemandTrace::zeros(&network, 1);
        for v in 1..=3 {
            assert!(source.next_slot(&mut out).unwrap());
            assert_eq!(
                out.lambda(0, SbsId(0), ClassId(0), ContentId(0)),
                f64::from(v)
            );
        }
        assert!(!source.next_slot(&mut out).unwrap());
        assert_eq!(source.delivered(), 3);
    }

    #[test]
    fn expected_slots_bound_the_stream_without_a_close() {
        let network = ScenarioConfig::tiny().build_network(4).unwrap();
        let (tx, rx) = bounded_slot_ring(8, Gauge::disabled());
        tx.try_push_batch(vec![DemandTrace::zeros(&network, 1); 5])
            .unwrap();
        let mut source = NetworkDemandSource::new(rx).with_expected_slots(2);
        assert_eq!(source.len_hint(), Some(2));
        let mut out = DemandTrace::zeros(&network, 1);
        assert!(source.next_slot(&mut out).unwrap());
        assert!(source.next_slot(&mut out).unwrap());
        // The ring still holds slots and is open, but the declared
        // horizon is reached: no block, clean end-of-stream.
        assert!(!source.next_slot(&mut out).unwrap());
        assert_eq!(tx.depth(), 3);
    }

    #[test]
    fn shape_mismatch_is_a_typed_error() {
        let tiny = ScenarioConfig::tiny().build_network(5).unwrap();
        let (tx, rx) = bounded_slot_ring(4, Gauge::disabled());
        tx.try_push_batch(vec![DemandTrace::zeros(&tiny, 1)])
            .unwrap();
        let mut source = NetworkDemandSource::new(rx);
        // A consumer buffer with a different topology shape.
        let mut other = ScenarioConfig::tiny();
        other.num_sbs += 1;
        let other_net = other.build_network(6).unwrap();
        let mut out = DemandTrace::zeros(&other_net, 1);
        assert!(source.next_slot(&mut out).is_err());
    }
}
