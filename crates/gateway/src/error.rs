//! Gateway error type.

use jocal_cluster::ClusterError;
use std::fmt;
use std::io;

/// Everything that can go wrong starting, running or joining a
/// [`crate::Gateway`] or a load-generator run.
#[derive(Debug)]
#[non_exhaustive]
pub enum GatewayError {
    /// Socket/listener-level failure.
    Io(io::Error),
    /// Invalid gateway or load-generator configuration.
    Config {
        /// Which knob is at fault.
        what: &'static str,
        /// What is wrong with it.
        detail: String,
    },
    /// The serving cluster behind the gateway failed.
    Cluster(ClusterError),
}

impl GatewayError {
    /// Builds a configuration error.
    #[must_use]
    pub fn config(what: &'static str, detail: impl Into<String>) -> Self {
        GatewayError::Config {
            what,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for GatewayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GatewayError::Io(e) => write!(f, "gateway i/o error: {e}"),
            GatewayError::Config { what, detail } => {
                write!(f, "gateway configuration error ({what}): {detail}")
            }
            GatewayError::Cluster(e) => write!(f, "serving cluster failed: {e}"),
        }
    }
}

impl std::error::Error for GatewayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GatewayError::Io(e) => Some(e),
            GatewayError::Cluster(e) => Some(e),
            GatewayError::Config { .. } => None,
        }
    }
}

impl From<io::Error> for GatewayError {
    fn from(e: io::Error) -> Self {
        GatewayError::Io(e)
    }
}

impl From<ClusterError> for GatewayError {
    fn from(e: ClusterError) -> Self {
        GatewayError::Cluster(e)
    }
}
