//! Hand-rolled HTTP/1.1 plumbing over `std::net`.
//!
//! Deliberately minimal: request-line + headers + `Content-Length`
//! bodies, keep-alive, `Expect: 100-continue`, and hard limits on
//! header and body size. Chunked transfer encoding is rejected — the
//! gateway's clients (curl, the load generator) never need it, and
//! refusing it keeps the parser small enough to audit. Malformed input
//! is reported as a value, never a panic: a worker thread survives any
//! byte sequence a client can send.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Parser limits. Requests beyond them are rejected, not truncated.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HttpLimits {
    /// Maximum accepted `Content-Length`.
    pub max_body_bytes: usize,
    /// Maximum total bytes of request line + headers.
    pub max_head_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_body_bytes: 16 << 20,
            max_head_bytes: 16 << 10,
        }
    }
}

/// One parsed request.
#[derive(Debug)]
pub(crate) struct Request {
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Raw query string (without the `?`), if any.
    pub query: Option<String>,
    pub body: Vec<u8>,
    /// Whether the client wants the connection kept open.
    pub keep_alive: bool,
    /// Inbound `x-request-id` header, if the client sent one (trimmed,
    /// bounded at [`MAX_REQUEST_ID_BYTES`]). The gateway echoes it —
    /// or a generated id — on every response.
    pub request_id: Option<String>,
}

/// Longest accepted inbound `x-request-id`; longer values are truncated
/// at a char boundary rather than rejected.
pub(crate) const MAX_REQUEST_ID_BYTES: usize = 128;

impl Request {
    /// Looks up a `key=value` pair in the query string.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.as_deref()?.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// What reading one request produced.
#[derive(Debug)]
pub(crate) enum ReadOutcome {
    /// A complete, well-formed request.
    Request(Request),
    /// The peer closed (or timed out) before sending anything: not an
    /// error, just the end of a keep-alive conversation.
    Closed,
    /// A protocol violation, with a human-readable reason. The caller
    /// responds 400 and closes.
    Malformed(String),
    /// The declared body exceeds the limit. The caller responds 413 and
    /// closes without reading the body.
    TooLarge,
}

/// Reads one request from `reader`, answering `Expect: 100-continue`
/// probes on `write` before consuming the body.
///
/// # Errors
///
/// Transport-level failures mid-request (timeouts tripping the read
/// deadline, resets): the caller closes the connection.
pub(crate) fn read_request(
    reader: &mut BufReader<TcpStream>,
    write: &mut TcpStream,
    limits: HttpLimits,
) -> io::Result<ReadOutcome> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return Ok(ReadOutcome::Closed),
        Ok(_) => {}
        // A keep-alive connection idling past the read deadline is a
        // clean end of conversation, not a transport failure.
        Err(e) if line.is_empty() && is_timeout(&e) => return Ok(ReadOutcome::Closed),
        Err(e) => return Err(e),
    }
    let mut head_bytes = line.len();
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m.to_string(), t.to_string(), v.to_string()),
        _ => return Ok(ReadOutcome::Malformed("bad request line".to_string())),
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(ReadOutcome::Malformed(format!(
            "unsupported version {version}"
        )));
    }
    let http11 = version != "HTTP/1.0";

    let mut content_length: usize = 0;
    let mut keep_alive = http11;
    let mut expect_continue = false;
    let mut request_id: Option<String> = None;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(ReadOutcome::Malformed("truncated headers".to_string()));
        }
        head_bytes += line.len();
        if head_bytes > limits.max_head_bytes {
            return Ok(ReadOutcome::Malformed("headers too large".to_string()));
        }
        let header = line.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Ok(ReadOutcome::Malformed(format!("bad header {header:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => match value.parse() {
                Ok(v) => content_length = v,
                Err(_) => {
                    return Ok(ReadOutcome::Malformed("bad content-length".to_string()));
                }
            },
            "transfer-encoding" => {
                return Ok(ReadOutcome::Malformed(
                    "chunked transfer encoding unsupported".to_string(),
                ));
            }
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v.contains("close") {
                    keep_alive = false;
                } else if v.contains("keep-alive") {
                    keep_alive = true;
                }
            }
            "expect" => expect_continue = value.eq_ignore_ascii_case("100-continue"),
            "x-request-id" if !value.is_empty() => {
                let mut id = value.to_string();
                if id.len() > MAX_REQUEST_ID_BYTES {
                    let mut cut = MAX_REQUEST_ID_BYTES;
                    while !id.is_char_boundary(cut) {
                        cut -= 1;
                    }
                    id.truncate(cut);
                }
                request_id = Some(id);
            }
            _ => {}
        }
    }
    if content_length > limits.max_body_bytes {
        return Ok(ReadOutcome::TooLarge);
    }
    if expect_continue && content_length > 0 {
        write.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
        write.flush()?;
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target, None),
    };
    Ok(ReadOutcome::Request(Request {
        method,
        path,
        query,
        body,
        keep_alive,
        request_id,
    }))
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// One response about to be written.
#[derive(Debug)]
pub(crate) struct Response {
    pub status: u16,
    pub reason: &'static str,
    pub content_type: &'static str,
    /// Extra headers, e.g. `Retry-After` on 429.
    pub extra: Vec<(&'static str, String)>,
    pub body: Vec<u8>,
    /// Force `Connection: close` regardless of the request.
    pub close: bool,
}

impl Response {
    pub fn new(status: u16, reason: &'static str, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            reason,
            content_type: "text/plain; charset=utf-8",
            extra: Vec::new(),
            body: body.into(),
            close: false,
        }
    }

    pub fn json(status: u16, reason: &'static str, body: impl Into<Vec<u8>>) -> Self {
        Response {
            content_type: "application/json",
            ..Response::new(status, reason, body)
        }
    }
}

/// Serializes `resp`; `keep_alive` reflects the request side and is
/// overridden by [`Response::close`].
pub(crate) fn write_response(
    w: &mut impl Write,
    resp: &Response,
    keep_alive: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        resp.status,
        resp.reason,
        resp.content_type,
        resp.body.len()
    );
    for (name, value) in &resp.extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    let alive = keep_alive && !resp.close;
    head.push_str(if alive {
        "Connection: keep-alive\r\n\r\n"
    } else {
        "Connection: close\r\n\r\n"
    });
    w.write_all(head.as_bytes())?;
    w.write_all(&resp.body)?;
    w.flush()
}

/// A response as seen by [`HttpClient`].
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Lower-cased header names with trimmed values.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
    /// Whether the server will keep the connection open.
    pub keep_alive: bool,
}

impl ClientResponse {
    /// First header with the given (lower-case) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find_map(|(n, v)| (n == name).then_some(v.as_str()))
    }
}

/// A minimal blocking HTTP/1.1 client speaking exactly the dialect the
/// gateway serves. Shared by the load generator, the CLI and the tests
/// so every consumer exercises the same code path.
#[derive(Debug)]
pub struct HttpClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    host: String,
}

impl HttpClient {
    /// Connects with the given I/O timeout applied to reads and writes.
    ///
    /// # Errors
    ///
    /// Propagates connect/configure failures.
    pub fn connect(addr: &str, timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(HttpClient {
            stream,
            reader,
            host: addr.to_string(),
        })
    }

    /// Sends one request and reads the full response (keep-alive).
    ///
    /// # Errors
    ///
    /// Transport failures and protocol violations surface as
    /// `io::Error`; the connection should then be discarded.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        self.request_with_headers(method, target, body, &[])
    }

    /// [`Self::request`] with extra request headers (e.g.
    /// `x-request-id` for end-to-end attribution).
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::request`].
    pub fn request_with_headers(
        &mut self,
        method: &str,
        target: &str,
        body: &[u8],
        headers: &[(&str, &str)],
    ) -> io::Result<ClientResponse> {
        let mut head = format!(
            "{method} {target} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n",
            self.host,
            body.len()
        );
        for (name, value) in headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<ClientResponse> {
        let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before status line",
            ));
        }
        let mut parts = line.split_whitespace();
        let version = parts.next().ok_or_else(|| bad("empty status line"))?;
        if !version.starts_with("HTTP/1.") {
            return Err(bad("bad status line"));
        }
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("bad status code"))?;

        let mut headers = Vec::new();
        let mut content_length = 0usize;
        let mut keep_alive = true;
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(bad("truncated response headers"));
            }
            let header = line.trim_end();
            if header.is_empty() {
                break;
            }
            let (name, value) = header.split_once(':').ok_or_else(|| bad("bad header"))?;
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().map_err(|_| bad("bad content-length"))?;
            }
            if name == "connection" && value.to_ascii_lowercase().contains("close") {
                keep_alive = false;
            }
            headers.push((name, value));
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        // Interim 100 Continue responses are not expected here: the
        // client never sends Expect.
        Ok(ClientResponse {
            status,
            headers,
            body,
            keep_alive,
        })
    }
}
