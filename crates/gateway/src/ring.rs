//! The bounded per-cell ingestion ring.
//!
//! One ring sits between the HTTP workers (producers, any number) and
//! one serving cell's [`crate::source::NetworkDemandSource`] (the single
//! consumer). The ring is the gateway's admission-control point: its
//! fixed capacity is the overload watermark, and a batch that does not
//! fit is rejected *whole* — the producer sheds it with HTTP 429 rather
//! than admitting a prefix the cell would serve as a torn batch. Depth
//! can therefore never exceed the watermark, which is what the overload
//! tests pin down.

use jocal_sim::demand::DemandTrace;
use jocal_telemetry::Gauge;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Why a batch push was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushError {
    /// Admitting the batch would exceed the ring's capacity. The whole
    /// batch is refused; callers translate this into HTTP 429.
    Overloaded {
        /// Queue depth at the time of refusal.
        depth: usize,
        /// The ring's fixed capacity (the overload watermark).
        capacity: usize,
    },
    /// The ring was closed by a drain; no further demand is admitted.
    Closed,
}

#[derive(Debug)]
struct RingState {
    queue: VecDeque<DemandTrace>,
    closed: bool,
    highwater: usize,
}

#[derive(Debug)]
struct RingShared {
    state: Mutex<RingState>,
    available: Condvar,
    capacity: usize,
    depth_gauge: Gauge,
}

/// Producer side of the ring: clonable, shared by all HTTP workers.
#[derive(Debug, Clone)]
pub struct IngressHandle {
    shared: Arc<RingShared>,
}

/// Consumer side of the ring: owned by exactly one
/// [`crate::source::NetworkDemandSource`].
#[derive(Debug)]
pub struct SlotQueue {
    shared: Arc<RingShared>,
}

/// Creates a bounded slot ring of the given capacity (the overload
/// watermark; must be at least 1). `depth_gauge` is kept in sync with
/// the queue depth on every push/pop — pass [`Gauge::disabled`] when
/// not observing.
#[must_use]
pub fn bounded_slot_ring(capacity: usize, depth_gauge: Gauge) -> (IngressHandle, SlotQueue) {
    assert!(capacity >= 1, "a slot ring needs capacity >= 1");
    let shared = Arc::new(RingShared {
        state: Mutex::new(RingState {
            queue: VecDeque::with_capacity(capacity.min(1024)),
            closed: false,
            highwater: 0,
        }),
        available: Condvar::new(),
        capacity,
        depth_gauge,
    });
    (
        IngressHandle {
            shared: Arc::clone(&shared),
        },
        SlotQueue { shared },
    )
}

impl IngressHandle {
    /// Admits `batch` atomically: either every slot is enqueued (in
    /// order) or none is. Returns the queue depth after the push.
    ///
    /// # Errors
    ///
    /// [`PushError::Overloaded`] when the batch does not fit under the
    /// watermark, [`PushError::Closed`] after a drain. An empty batch on
    /// an open ring always succeeds.
    pub fn try_push_batch(&self, batch: Vec<DemandTrace>) -> Result<usize, PushError> {
        let mut state = self.shared.state.lock().expect("ring lock poisoned");
        if state.closed {
            return Err(PushError::Closed);
        }
        let depth = state.queue.len();
        if depth + batch.len() > self.shared.capacity {
            return Err(PushError::Overloaded {
                depth,
                capacity: self.shared.capacity,
            });
        }
        state.queue.extend(batch);
        let depth = state.queue.len();
        state.highwater = state.highwater.max(depth);
        self.shared.depth_gauge.set(depth as f64);
        drop(state);
        self.shared.available.notify_all();
        Ok(depth)
    }

    /// Closes the ring: future pushes fail with [`PushError::Closed`]
    /// and the consumer drains what is already queued, then observes
    /// end-of-stream. Idempotent.
    pub fn close(&self) {
        let mut state = self.shared.state.lock().expect("ring lock poisoned");
        state.closed = true;
        drop(state);
        self.shared.available.notify_all();
    }

    /// Current queue depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("ring lock poisoned")
            .queue
            .len()
    }

    /// Highest depth ever observed (the overload high-watermark).
    #[must_use]
    pub fn highwater(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("ring lock poisoned")
            .highwater
    }

    /// The ring's fixed capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Whether the ring has been closed.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.shared.state.lock().expect("ring lock poisoned").closed
    }
}

impl SlotQueue {
    /// Pops the next slot, blocking while the ring is empty and open.
    /// Returns `None` once the ring is closed *and* drained.
    #[must_use]
    pub fn pop_blocking(&mut self) -> Option<DemandTrace> {
        let mut state = self.shared.state.lock().expect("ring lock poisoned");
        loop {
            if let Some(slot) = state.queue.pop_front() {
                self.shared.depth_gauge.set(state.queue.len() as f64);
                return Some(slot);
            }
            if state.closed {
                return None;
            }
            state = self
                .shared
                .available
                .wait(state)
                .expect("ring lock poisoned");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jocal_sim::scenario::ScenarioConfig;

    fn slot() -> DemandTrace {
        let network = ScenarioConfig::tiny().build_network(1).unwrap();
        DemandTrace::zeros(&network, 1)
    }

    #[test]
    fn batch_push_is_all_or_nothing() {
        let (tx, _rx) = bounded_slot_ring(4, Gauge::disabled());
        assert_eq!(tx.try_push_batch(vec![slot(); 3]).unwrap(), 3);
        // A 2-slot batch would reach depth 5 > 4: refused whole.
        let err = tx.try_push_batch(vec![slot(); 2]).unwrap_err();
        assert_eq!(
            err,
            PushError::Overloaded {
                depth: 3,
                capacity: 4
            }
        );
        assert_eq!(tx.depth(), 3, "no partial admission");
        // A 1-slot batch still fits exactly at the watermark.
        assert_eq!(tx.try_push_batch(vec![slot()]).unwrap(), 4);
        assert_eq!(tx.highwater(), 4);
    }

    #[test]
    fn depth_never_exceeds_capacity_under_concurrent_pushes() {
        let (tx, mut rx) = bounded_slot_ring(8, Gauge::disabled());
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    let mut shed = 0usize;
                    for _ in 0..50 {
                        if tx.try_push_batch(vec![slot(); 2]).is_err() {
                            shed += 1;
                        }
                    }
                    shed
                })
            })
            .collect();
        let consumer = std::thread::spawn(move || {
            let mut popped = 0usize;
            while rx.pop_blocking().is_some() {
                popped += 1;
            }
            popped
        });
        let shed: usize = producers.into_iter().map(|p| p.join().unwrap()).sum();
        tx.close();
        let popped = consumer.join().unwrap();
        assert!(
            tx.highwater() <= 8,
            "highwater {} > capacity",
            tx.highwater()
        );
        // Every slot is either admitted (and eventually popped) or part
        // of a shed batch — nothing is lost or duplicated.
        assert_eq!(popped, 2 * (4 * 50 - shed));
    }

    #[test]
    fn close_unblocks_the_consumer_and_rejects_producers() {
        let (tx, mut rx) = bounded_slot_ring(2, Gauge::disabled());
        tx.try_push_batch(vec![slot()]).unwrap();
        tx.close();
        assert_eq!(
            tx.try_push_batch(vec![slot()]).unwrap_err(),
            PushError::Closed
        );
        // Queued work still drains after the close...
        assert!(rx.pop_blocking().is_some());
        // ...then the consumer sees end-of-stream instead of blocking.
        assert!(rx.pop_blocking().is_none());
        assert!(tx.is_closed());
    }

    #[test]
    fn gauge_tracks_depth() {
        let tele = jocal_telemetry::Telemetry::enabled();
        let gauge = tele.gauge("test_ring_depth");
        let (tx, mut rx) = bounded_slot_ring(4, gauge.clone());
        tx.try_push_batch(vec![slot(); 3]).unwrap();
        assert_eq!(gauge.get(), 3.0);
        let _ = rx.pop_blocking();
        assert_eq!(gauge.get(), 2.0);
    }
}
