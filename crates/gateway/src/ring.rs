//! The bounded per-cell ingestion ring.
//!
//! One ring sits between the HTTP workers (producers, any number) and
//! one serving cell's [`crate::source::NetworkDemandSource`] (the single
//! consumer). The ring is the gateway's admission-control point: its
//! fixed capacity is the overload watermark, and a batch that does not
//! fit is rejected *whole* — the producer sheds it with HTTP 429 rather
//! than admitting a prefix the cell would serve as a torn batch. Depth
//! can therefore never exceed the watermark, which is what the overload
//! tests pin down.

use jocal_sim::demand::DemandTrace;
use jocal_telemetry::Gauge;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Pop timestamps retained for the drain-rate estimate.
const DRAIN_RATE_SAMPLES: usize = 64;

/// Floor and ceiling for a computed `Retry-After`, in seconds.
pub const RETRY_AFTER_MIN_SECS: u64 = 1;
/// See [`RETRY_AFTER_MIN_SECS`].
pub const RETRY_AFTER_MAX_SECS: u64 = 30;

/// Seconds a shed client should wait before retrying, derived from the
/// backlog and the observed drain rate: `ceil(pending / rate)`, clamped
/// to `[1, 30]`. With no observed drain (a stalled or not-yet-started
/// consumer) the estimate is the ceiling — retrying soon cannot help.
#[must_use]
pub fn retry_after_secs(pending: usize, drain_rate_per_sec: f64) -> u64 {
    if pending == 0 {
        return RETRY_AFTER_MIN_SECS;
    }
    if drain_rate_per_sec.is_nan() || drain_rate_per_sec <= 0.0 {
        return RETRY_AFTER_MAX_SECS;
    }
    let secs = (pending as f64 / drain_rate_per_sec).ceil();
    // f64→u64 casts saturate, so an absurd estimate still clamps.
    (secs as u64).clamp(RETRY_AFTER_MIN_SECS, RETRY_AFTER_MAX_SECS)
}

/// A request tag carried with each admitted slot: which gateway request
/// pushed it. Cheap to clone (`Arc<str>`); absent for slots admitted
/// through the untagged path.
pub type SlotTag = Option<Arc<str>>;

/// Why a batch push was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushError {
    /// Admitting the batch would exceed the ring's capacity. The whole
    /// batch is refused; callers translate this into HTTP 429.
    Overloaded {
        /// Queue depth at the time of refusal.
        depth: usize,
        /// The ring's fixed capacity (the overload watermark).
        capacity: usize,
    },
    /// The ring was closed by a drain; no further demand is admitted.
    Closed,
}

#[derive(Debug)]
struct RingState {
    queue: VecDeque<(DemandTrace, SlotTag)>,
    closed: bool,
    highwater: usize,
    /// Monotonic timestamps (µs) of recent pops, newest last — the
    /// drain-rate estimator behind [`retry_after_secs`].
    recent_pops: VecDeque<u64>,
}

#[derive(Debug)]
struct RingShared {
    state: Mutex<RingState>,
    available: Condvar,
    capacity: usize,
    depth_gauge: Gauge,
}

/// Producer side of the ring: clonable, shared by all HTTP workers.
#[derive(Debug, Clone)]
pub struct IngressHandle {
    shared: Arc<RingShared>,
}

/// Consumer side of the ring: owned by exactly one
/// [`crate::source::NetworkDemandSource`].
#[derive(Debug)]
pub struct SlotQueue {
    shared: Arc<RingShared>,
}

/// Creates a bounded slot ring of the given capacity (the overload
/// watermark; must be at least 1). `depth_gauge` is kept in sync with
/// the queue depth on every push/pop — pass [`Gauge::disabled`] when
/// not observing.
#[must_use]
pub fn bounded_slot_ring(capacity: usize, depth_gauge: Gauge) -> (IngressHandle, SlotQueue) {
    assert!(capacity >= 1, "a slot ring needs capacity >= 1");
    let shared = Arc::new(RingShared {
        state: Mutex::new(RingState {
            queue: VecDeque::with_capacity(capacity.min(1024)),
            closed: false,
            highwater: 0,
            recent_pops: VecDeque::with_capacity(DRAIN_RATE_SAMPLES),
        }),
        available: Condvar::new(),
        capacity,
        depth_gauge,
    });
    (
        IngressHandle {
            shared: Arc::clone(&shared),
        },
        SlotQueue { shared },
    )
}

impl IngressHandle {
    /// Admits `batch` atomically: either every slot is enqueued (in
    /// order) or none is. Returns the queue depth after the push.
    ///
    /// # Errors
    ///
    /// [`PushError::Overloaded`] when the batch does not fit under the
    /// watermark, [`PushError::Closed`] after a drain. An empty batch on
    /// an open ring always succeeds.
    pub fn try_push_batch(&self, batch: Vec<DemandTrace>) -> Result<usize, PushError> {
        self.try_push_batch_tagged(batch, None)
    }

    /// [`Self::try_push_batch`] with a request tag stamped on every
    /// slot, so the consumer can attribute each slot back to the
    /// gateway request that admitted it.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::try_push_batch`].
    pub fn try_push_batch_tagged(
        &self,
        batch: Vec<DemandTrace>,
        tag: SlotTag,
    ) -> Result<usize, PushError> {
        let mut state = self.shared.state.lock().expect("ring lock poisoned");
        if state.closed {
            return Err(PushError::Closed);
        }
        let depth = state.queue.len();
        if depth + batch.len() > self.shared.capacity {
            return Err(PushError::Overloaded {
                depth,
                capacity: self.shared.capacity,
            });
        }
        state
            .queue
            .extend(batch.into_iter().map(|slot| (slot, tag.clone())));
        let depth = state.queue.len();
        state.highwater = state.highwater.max(depth);
        self.shared.depth_gauge.set(depth as f64);
        drop(state);
        self.shared.available.notify_all();
        Ok(depth)
    }

    /// Closes the ring: future pushes fail with [`PushError::Closed`]
    /// and the consumer drains what is already queued, then observes
    /// end-of-stream. Idempotent.
    pub fn close(&self) {
        let mut state = self.shared.state.lock().expect("ring lock poisoned");
        state.closed = true;
        drop(state);
        self.shared.available.notify_all();
    }

    /// Current queue depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("ring lock poisoned")
            .queue
            .len()
    }

    /// Highest depth ever observed (the overload high-watermark).
    #[must_use]
    pub fn highwater(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("ring lock poisoned")
            .highwater
    }

    /// The ring's fixed capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Whether the ring has been closed.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.shared.state.lock().expect("ring lock poisoned").closed
    }

    /// Slots per second the consumer has recently drained, estimated
    /// over the last `DRAIN_RATE_SAMPLES` (64) pops. Zero until at
    /// least two pops have been observed.
    #[must_use]
    pub fn drain_rate_per_sec(&self) -> f64 {
        let state = self.shared.state.lock().expect("ring lock poisoned");
        let pops = &state.recent_pops;
        if pops.len() < 2 {
            return 0.0;
        }
        let span_us = pops.back().unwrap().saturating_sub(*pops.front().unwrap());
        if span_us == 0 {
            return 0.0;
        }
        (pops.len() - 1) as f64 * 1e6 / span_us as f64
    }

    /// The `Retry-After` a shed producer should send: the current
    /// backlog divided by the observed drain rate, via
    /// [`retry_after_secs`].
    #[must_use]
    pub fn suggested_retry_after_secs(&self) -> u64 {
        retry_after_secs(self.depth(), self.drain_rate_per_sec())
    }
}

impl SlotQueue {
    /// Pops the next slot, blocking while the ring is empty and open.
    /// Returns `None` once the ring is closed *and* drained.
    #[must_use]
    pub fn pop_blocking(&mut self) -> Option<DemandTrace> {
        self.pop_blocking_tagged().map(|(slot, _)| slot)
    }

    /// [`Self::pop_blocking`], also returning the request tag the slot
    /// was admitted under (if any).
    #[must_use]
    pub fn pop_blocking_tagged(&mut self) -> Option<(DemandTrace, SlotTag)> {
        let mut state = self.shared.state.lock().expect("ring lock poisoned");
        loop {
            if let Some(entry) = state.queue.pop_front() {
                self.shared.depth_gauge.set(state.queue.len() as f64);
                let now = jocal_telemetry::monotonic_us();
                if state.recent_pops.len() >= DRAIN_RATE_SAMPLES {
                    state.recent_pops.pop_front();
                }
                state.recent_pops.push_back(now);
                return Some(entry);
            }
            if state.closed {
                return None;
            }
            state = self
                .shared
                .available
                .wait(state)
                .expect("ring lock poisoned");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jocal_sim::scenario::ScenarioConfig;

    fn slot() -> DemandTrace {
        let network = ScenarioConfig::tiny().build_network(1).unwrap();
        DemandTrace::zeros(&network, 1)
    }

    #[test]
    fn batch_push_is_all_or_nothing() {
        let (tx, _rx) = bounded_slot_ring(4, Gauge::disabled());
        assert_eq!(tx.try_push_batch(vec![slot(); 3]).unwrap(), 3);
        // A 2-slot batch would reach depth 5 > 4: refused whole.
        let err = tx.try_push_batch(vec![slot(); 2]).unwrap_err();
        assert_eq!(
            err,
            PushError::Overloaded {
                depth: 3,
                capacity: 4
            }
        );
        assert_eq!(tx.depth(), 3, "no partial admission");
        // A 1-slot batch still fits exactly at the watermark.
        assert_eq!(tx.try_push_batch(vec![slot()]).unwrap(), 4);
        assert_eq!(tx.highwater(), 4);
    }

    #[test]
    fn depth_never_exceeds_capacity_under_concurrent_pushes() {
        let (tx, mut rx) = bounded_slot_ring(8, Gauge::disabled());
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    let mut shed = 0usize;
                    for _ in 0..50 {
                        if tx.try_push_batch(vec![slot(); 2]).is_err() {
                            shed += 1;
                        }
                    }
                    shed
                })
            })
            .collect();
        let consumer = std::thread::spawn(move || {
            let mut popped = 0usize;
            while rx.pop_blocking().is_some() {
                popped += 1;
            }
            popped
        });
        let shed: usize = producers.into_iter().map(|p| p.join().unwrap()).sum();
        tx.close();
        let popped = consumer.join().unwrap();
        assert!(
            tx.highwater() <= 8,
            "highwater {} > capacity",
            tx.highwater()
        );
        // Every slot is either admitted (and eventually popped) or part
        // of a shed batch — nothing is lost or duplicated.
        assert_eq!(popped, 2 * (4 * 50 - shed));
    }

    #[test]
    fn close_unblocks_the_consumer_and_rejects_producers() {
        let (tx, mut rx) = bounded_slot_ring(2, Gauge::disabled());
        tx.try_push_batch(vec![slot()]).unwrap();
        tx.close();
        assert_eq!(
            tx.try_push_batch(vec![slot()]).unwrap_err(),
            PushError::Closed
        );
        // Queued work still drains after the close...
        assert!(rx.pop_blocking().is_some());
        // ...then the consumer sees end-of-stream instead of blocking.
        assert!(rx.pop_blocking().is_none());
        assert!(tx.is_closed());
    }

    #[test]
    fn retry_after_is_backlog_over_drain_rate_clamped() {
        // Empty ring: retry immediately.
        assert_eq!(retry_after_secs(0, 100.0), 1);
        // No observed drain: the ceiling, whatever the backlog.
        assert_eq!(retry_after_secs(1, 0.0), 30);
        assert_eq!(retry_after_secs(500, -1.0), 30);
        assert_eq!(retry_after_secs(500, f64::NAN), 30);
        // 10 pending at 5/s → ceil(2.0) = 2.
        assert_eq!(retry_after_secs(10, 5.0), 2);
        // Rounded up: 10 pending at 4/s → ceil(2.5) = 3.
        assert_eq!(retry_after_secs(10, 4.0), 3);
        // Fast drain clamps to the floor, slow drain to the ceiling.
        assert_eq!(retry_after_secs(3, 1000.0), 1);
        assert_eq!(retry_after_secs(10_000, 0.001), 30);
        assert_eq!(retry_after_secs(usize::MAX, f64::MIN_POSITIVE), 30);
    }

    #[test]
    fn drain_rate_needs_two_pops_then_tracks_consumption() {
        let (tx, mut rx) = bounded_slot_ring(8, Gauge::disabled());
        assert_eq!(tx.drain_rate_per_sec(), 0.0);
        // With no drain observed the suggestion is the 30s ceiling.
        tx.try_push_batch(vec![slot(); 4]).unwrap();
        assert_eq!(tx.suggested_retry_after_secs(), 30);
        let _ = rx.pop_blocking();
        assert_eq!(tx.drain_rate_per_sec(), 0.0, "one pop is not a rate");
        // Space the pops out so the measured span is nonzero.
        std::thread::sleep(std::time::Duration::from_millis(2));
        let _ = rx.pop_blocking();
        // Two pops milliseconds apart: hundreds of slots per second,
        // so the suggestion collapses to the 1s floor.
        assert!(tx.drain_rate_per_sec() > 0.0);
        assert_eq!(tx.suggested_retry_after_secs(), 1);
    }

    #[test]
    fn tags_ride_along_with_slots() {
        let (tx, mut rx) = bounded_slot_ring(8, Gauge::disabled());
        tx.try_push_batch_tagged(vec![slot(); 2], Some("req-7".into()))
            .unwrap();
        tx.try_push_batch(vec![slot()]).unwrap();
        let (_, tag) = rx.pop_blocking_tagged().unwrap();
        assert_eq!(tag.as_deref(), Some("req-7"));
        let (_, tag) = rx.pop_blocking_tagged().unwrap();
        assert_eq!(tag.as_deref(), Some("req-7"));
        // The untagged path yields no tag.
        let (_, tag) = rx.pop_blocking_tagged().unwrap();
        assert!(tag.is_none());
    }

    #[test]
    fn gauge_tracks_depth() {
        let tele = jocal_telemetry::Telemetry::enabled();
        let gauge = tele.gauge("test_ring_depth");
        let (tx, mut rx) = bounded_slot_ring(4, gauge.clone());
        tx.try_push_batch(vec![slot(); 3]).unwrap();
        assert_eq!(gauge.get(), 3.0);
        let _ = rx.pop_blocking();
        assert_eq!(gauge.get(), 2.0);
    }
}
