//! Network-facing serving frontend for the jocal workspace.
//!
//! `jocal-gateway` puts the multi-cell serving runtime
//! ([`jocal_cluster`]) behind a real service surface: a pure-`std::net`
//! HTTP/1.1 frontend with hand-rolled request parsing, an acceptor
//! thread and a fixed worker pool — no async runtime, no external
//! dependencies. Demand enters over the wire instead of from an
//! in-process trace:
//!
//! * `POST /v1/demand?cell=<id>` — batched per-cell MU demand in the
//!   demand-trace CSV format, routed into that cell's bounded
//!   ingestion ring ([`ring`]) and consumed by a
//!   [`source::NetworkDemandSource`].
//! * `GET /metrics` — live Prometheus text exposition straight from the
//!   existing [`jocal_telemetry`] exporter.
//! * `GET /healthz` / `GET /readyz` — liveness and drain-aware
//!   readiness.
//! * `POST /v1/shutdown` — graceful drain: stop accepting, close the
//!   rings, let every cell flush its sinks, join the workers.
//!
//! Robustness is the design center: both admission points (connection
//! queue, per-cell slot rings) are bounded and shed with `429` +
//! `Retry-After` at their watermarks, reads carry per-request
//! deadlines, malformed requests are rejected without killing the
//! worker, and the gateway observes itself (`gateway_requests`,
//! `gateway_rejected_overload`, `gateway_queue_depth`,
//! `gateway_request_us`) through the zero-overhead-when-off telemetry
//! layer.
//!
//! The [`loadgen`] module is the matching traffic source: a
//! multi-threaded closed/open-loop generator that simulates millions
//! of MU request streams by intensity-scaling scenario demand.
//!
//! A gateway-fed cell is **bit-identical** to an in-process replay of
//! the same trace: the wire format round-trips `f64` exactly, the
//! blocking ring delivers the same full look-ahead windows, and the
//! declared slot horizon reproduces the planning horizon a finite
//! trace would report. The end-to-end parity tests pin this down for
//! RHC/AFHC/CHC at 1 and 4 shards.

pub mod error;
pub mod gateway;
pub mod http;
pub mod loadgen;
pub mod ring;
pub mod source;

pub use error::GatewayError;
pub use gateway::{
    CellSpec, Gateway, GatewayConfig, GatewayHandle, GatewayStats, ObservabilityConfig,
};
pub use http::{ClientResponse, HttpClient};
pub use loadgen::{run_loadgen, LoadgenConfig, LoadgenMode, LoadgenReport};
pub use ring::{bounded_slot_ring, retry_after_secs, IngressHandle, PushError, SlotQueue, SlotTag};
pub use source::NetworkDemandSource;

use jocal_telemetry::Telemetry;

/// Preregisters the headline metric names the workspace's dashboards
/// key on, so a scrape before any traffic (or a 0-slot run) already
/// exposes the full set in stable registration order. Shared by the
/// CLI's `--telemetry-out`/`--prom-out` paths and the gateway's
/// `/metrics` endpoint.
pub fn preregister_headline_metrics(telemetry: &Telemetry) {
    let _ = telemetry.histogram("pd_iterations");
    let _ = telemetry.counter("pd_iterations_total");
    let _ = telemetry.histogram("pd_dual_residual_norm_1e6");
    let _ = telemetry.counter("pd_early_exit_total");
    let _ = telemetry.histogram("window_solve_us");
    let _ = telemetry.counter("window_incremental_builds_total");
    let _ = telemetry.counter("window_full_builds_total");
    let _ = telemetry.counter("chc_rounding_flips_total");
    let _ = telemetry.counter("repair_scale_passes_total");
    let _ = telemetry.histogram("repair_scale_pct");
    let _ = telemetry.counter("p2_sparse_slots_total");
    let _ = telemetry.histogram("serve_slot_nonzeros");
    // Flight-recorder headline set: present in a scrape even before a
    // frame is written or a trigger fires.
    let _ = telemetry.counter("flightrec_frames_total");
    let _ = telemetry.counter("flightrec_bytes");
    let _ = telemetry.counter("flightrec_frames_dropped");
    for trigger in [
        "slo_breach",
        "ratio_watchdog",
        "constraint_violation",
        "worker_panic",
    ] {
        let _ = telemetry.counter_with("flightrec_dumps_total", "trigger", trigger);
    }
    let _ = telemetry.counter("slo_signal_missing_total");
}
