//! The gateway runtime: acceptor, worker pool, router and drain.
//!
//! ```text
//!                     ┌───────────────┐   bounded conn    ┌──────────┐
//!  TCP clients ─────▶ │ acceptor      │ ────── queue ───▶ │ worker×W │
//!                     │ (nonblocking) │    (shed: 429)    │ HTTP/1.1 │
//!                     └───────────────┘                   └────┬─────┘
//!                                                              │ POST /v1/demand?cell=i
//!                                            bounded per-cell  ▼
//!                   ┌──────────────┐   slot rings   ┌────────────────┐
//!                   │ serve thread │ ◀── (shed: ────│ IngressHandle  │
//!                   │ ClusterEngine│      429)      │   per cell     │
//!                   └──────────────┘                └────────────────┘
//! ```
//!
//! Overload semantics: both admission points are bounded and shed with
//! HTTP 429 + `Retry-After` — a full connection queue sheds at accept,
//! a full per-cell slot ring sheds the whole demand batch. Drain
//! protocol (`POST /v1/shutdown` or [`Gateway::drain`]): stop
//! accepting, close every ring; cells consume what was admitted, emit
//! summaries and flush sinks; [`Gateway::join`] then reaps the serve
//! thread, the acceptor and the workers.

use crate::error::GatewayError;
use crate::http::{read_request, write_response, HttpLimits, ReadOutcome, Request, Response};
use crate::ring::{bounded_slot_ring, IngressHandle, PushError, SlotTag, RETRY_AFTER_MIN_SECS};
use crate::source::NetworkDemandSource;
use jocal_cluster::{Cell, ClusterConfig, ClusterEngine, ClusterError, ClusterReport};
use jocal_core::plan::CacheState;
use jocal_core::CostModel;
use jocal_flightrec::FlightRecorder;
use jocal_online::policy::OnlinePolicy;
use jocal_serve::metrics::{MetricsSink, NullSink};
use jocal_serve::source::{ChunkedTraceReader, DemandSource as _};
use jocal_serve::{ServeConfig, ServeError};
use jocal_sim::demand::DemandTrace;
use jocal_sim::topology::Network;
use jocal_telemetry::{
    monotonic_us, BuildInfo, Counter, FieldValue, Gauge, Histogram, RollingCollector, SloEngine,
    SloSpec, SloState, SloStatus, Telemetry, PROMETHEUS_CONTENT_TYPE,
};
use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// HTTP-side knobs. Serving-side knobs live in each cell's
/// [`ServeConfig`].
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Gateway::local_addr`]).
    pub addr: String,
    /// HTTP worker threads (each owns one connection at a time).
    pub http_workers: usize,
    /// Per-cell slot-ring capacity — the overload watermark `Q`.
    pub queue_capacity: usize,
    /// Accepted-but-unclaimed connection bound; beyond it the acceptor
    /// sheds with 429.
    pub pending_connections: usize,
    /// Per-request read deadline (socket read timeout).
    pub read_timeout: Duration,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Rolling time-series and SLO watchdog knobs. Inert when the
    /// gateway's telemetry is disabled.
    pub observability: ObservabilityConfig,
    /// Enables fault-injection endpoints (`POST /debug/panic`) used to
    /// exercise the worker-panic isolation and flight-recorder trigger
    /// paths end to end. Never enable on a real deployment.
    pub debug_endpoints: bool,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            addr: "127.0.0.1:0".to_string(),
            http_workers: 4,
            queue_capacity: 256,
            pending_connections: 128,
            read_timeout: Duration::from_secs(5),
            max_body_bytes: 16 << 20,
            observability: ObservabilityConfig::default(),
            debug_endpoints: false,
        }
    }
}

/// Knobs for the gateway's observability runtime: the rolling
/// time-series collector behind `GET /debug/vars` and the `_rate` /
/// `_window` Prometheus series, plus the SLO burn-rate watchdog that
/// flips `/readyz` on breach.
///
/// The runtime only exists when the gateway's [`Telemetry`] is
/// enabled; with disabled telemetry every knob here is inert and the
/// request path is byte-identical to a gateway without observability.
#[derive(Debug, Clone)]
pub struct ObservabilityConfig {
    /// Rolling aggregation windows (default 1s / 10s / 60s).
    pub windows: Vec<Duration>,
    /// Background sampling cadence. `None` disables the sampler
    /// thread: samples are then taken only on explicit
    /// [`GatewayHandle::observe_at`] calls, which is what deterministic
    /// tests use.
    pub sample_interval: Option<Duration>,
    /// Declarative objectives; empty means `/readyz` is driven by the
    /// drain state alone.
    pub slos: Vec<SloSpec>,
    /// Fast burn window (default 1s): trips Warn.
    pub fast_window: Duration,
    /// Slow burn window (default 60s): Breach needs both windows over
    /// target.
    pub slow_window: Duration,
}

impl Default for ObservabilityConfig {
    fn default() -> Self {
        ObservabilityConfig {
            windows: vec![
                Duration::from_secs(1),
                Duration::from_secs(10),
                Duration::from_secs(60),
            ],
            sample_interval: Some(Duration::from_millis(250)),
            slos: Vec::new(),
            fast_window: Duration::from_secs(1),
            slow_window: Duration::from_secs(60),
        }
    }
}

impl ObservabilityConfig {
    fn duration_us(d: Duration) -> u64 {
        u64::try_from(d.as_micros()).unwrap_or(u64::MAX).max(1)
    }

    fn build_runtime(&self, telemetry: &Telemetry) -> Option<Mutex<ObsRuntime>> {
        if !telemetry.is_enabled() {
            return None;
        }
        let windows_us: Vec<u64> = self
            .windows
            .iter()
            .copied()
            .map(Self::duration_us)
            .collect();
        let collector = if windows_us.is_empty() {
            RollingCollector::new(telemetry.clone())
        } else {
            RollingCollector::with_windows(telemetry.clone(), &windows_us)
        };
        let slo = SloEngine::new(
            self.slos.clone(),
            Self::duration_us(self.fast_window),
            Self::duration_us(self.slow_window),
        );
        Some(Mutex::new(ObsRuntime { collector, slo }))
    }
}

/// The lock-guarded observability state: one collector feeding one SLO
/// engine. Sampling is explicit (the background sampler thread or a
/// test's `observe_at`), never on the request path, so holding the
/// lock briefly in `/metrics` and `/debug/vars` handlers is the only
/// contention.
struct ObsRuntime {
    collector: RollingCollector,
    slo: SloEngine,
}

/// Everything one serving cell behind the gateway needs — the same
/// collaborators as a [`jocal_cluster::Cell`], minus the demand source,
/// which the gateway supplies as a [`NetworkDemandSource`] fed by
/// `POST /v1/demand?cell=<id>`. Cell ids are positions in the
/// `Vec<CellSpec>` handed to [`Gateway::start`], matching the cluster
/// convention.
pub struct CellSpec {
    pub(crate) network: Network,
    pub(crate) cost_model: CostModel,
    pub(crate) config: ServeConfig,
    pub(crate) policy: Box<dyn OnlinePolicy + Send>,
    pub(crate) initial: CacheState,
    pub(crate) sink: Box<dyn MetricsSink + Send>,
    pub(crate) expected_slots: Option<usize>,
    pub(crate) recorder: FlightRecorder,
}

impl std::fmt::Debug for CellSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CellSpec")
            .field("policy", &self.policy.name())
            .field("config", &self.config)
            .field("expected_slots", &self.expected_slots)
            .finish_non_exhaustive()
    }
}

impl CellSpec {
    /// A cell with an empty initial cache and a [`NullSink`].
    #[must_use]
    pub fn new(
        network: Network,
        cost_model: CostModel,
        config: ServeConfig,
        policy: Box<dyn OnlinePolicy + Send>,
    ) -> Self {
        let initial = CacheState::empty(&network);
        CellSpec {
            network,
            cost_model,
            config,
            policy,
            initial,
            sink: Box::new(NullSink),
            expected_slots: None,
            recorder: FlightRecorder::disabled(),
        }
    }

    /// Attaches a flight recorder: the cell emits per-slot capture
    /// frames tagged with the request ids that delivered them, and the
    /// gateway appends trigger records on SLO breach or worker panic.
    #[must_use]
    pub fn with_recorder(mut self, recorder: FlightRecorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Overrides the initial cache state (defaults to empty).
    #[must_use]
    pub fn with_initial(mut self, initial: CacheState) -> Self {
        self.initial = initial;
        self
    }

    /// Attaches a metrics sink (the cell's full record stream).
    #[must_use]
    pub fn with_sink(mut self, sink: Box<dyn MetricsSink + Send>) -> Self {
        self.sink = sink;
        self
    }

    /// Declares how many slots the network will deliver: the cell plans
    /// against this horizon (exactly like a finite trace) and the run
    /// completes by itself once they arrive. Without it the cell's
    /// `max_slots` must be set, and only a drain ends the stream.
    #[must_use]
    pub fn with_expected_slots(mut self, slots: usize) -> Self {
        self.expected_slots = Some(slots);
        self
    }
}

/// Point-in-time gateway counters, independent of telemetry (they are
/// tracked even when the telemetry layer is disabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GatewayStats {
    /// Requests fully parsed (all endpoints).
    pub requests: u64,
    /// Requests shed with 429 — full connection queue or full slot
    /// ring.
    pub rejected_overload: u64,
    /// Malformed/oversized requests rejected with 4xx.
    pub malformed: u64,
    /// Worker panics caught (always 0 unless a handler bug slips in).
    pub worker_panics: u64,
    /// Highest slot-ring depth observed across all cells.
    pub queue_depth_highwater: usize,
}

/// Telemetry handles resolved once at startup; recording is lock-free
/// and a no-op when telemetry is disabled.
#[derive(Debug, Default)]
struct GatewayObs {
    requests: Counter,
    rejected: Counter,
    malformed: Counter,
    panics: Counter,
    request_us: Histogram,
    queue_highwater: Gauge,
}

impl GatewayObs {
    fn resolve(telemetry: &Telemetry) -> Self {
        GatewayObs {
            requests: telemetry.counter("gateway_requests"),
            rejected: telemetry.counter("gateway_rejected_overload"),
            malformed: telemetry.counter("gateway_malformed_total"),
            panics: telemetry.counter("gateway_worker_panics_total"),
            request_us: telemetry.histogram("gateway_request_us"),
            queue_highwater: telemetry.gauge("gateway_queue_depth_highwater"),
        }
    }
}

/// One cell's ingestion state as seen by the HTTP side.
struct CellIngress {
    handle: IngressHandle,
    /// Single-slot buffer template with the cell's exact (n, m, k)
    /// layout; demand bodies are parsed into clones of it.
    template: DemandTrace,
}

/// Bounded queue of accepted-but-unclaimed connections.
struct ConnQueue {
    state: Mutex<(VecDeque<TcpStream>, bool)>,
    available: Condvar,
    capacity: usize,
}

impl ConnQueue {
    fn new(capacity: usize) -> Self {
        ConnQueue {
            state: Mutex::new((VecDeque::new(), false)),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Hands the stream back when the queue is full or closed.
    fn try_push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut state = self.state.lock().expect("conn queue poisoned");
        if state.1 || state.0.len() >= self.capacity {
            return Err(stream);
        }
        state.0.push_back(stream);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    fn close(&self) {
        self.state.lock().expect("conn queue poisoned").1 = true;
        self.available.notify_all();
    }

    fn pop_blocking(&self) -> Option<TcpStream> {
        let mut state = self.state.lock().expect("conn queue poisoned");
        loop {
            if let Some(stream) = state.0.pop_front() {
                return Some(stream);
            }
            if state.1 {
                return None;
            }
            state = self.available.wait(state).expect("conn queue poisoned");
        }
    }
}

struct Shared {
    cells: Vec<CellIngress>,
    telemetry: Telemetry,
    obs: GatewayObs,
    obs_runtime: Option<Mutex<ObsRuntime>>,
    slo_breached: AtomicBool,
    next_request_id: AtomicU64,
    /// Per-boot stamp mixed into generated request ids so two
    /// incidents' logs never collide across restarts.
    boot_stamp: u32,
    /// Per-cell flight recorders (disabled handles when recording is
    /// off) — the gateway fires `slo_breach` / `worker_panic` triggers
    /// into all of them.
    recorders: Vec<FlightRecorder>,
    debug_endpoints: bool,
    draining: AtomicBool,
    http_stop: AtomicBool,
    requests: AtomicU64,
    rejected: AtomicU64,
    malformed: AtomicU64,
    panics: AtomicU64,
    limits: HttpLimits,
    read_timeout: Duration,
}

impl Shared {
    fn drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        for cell in &self.cells {
            cell.handle.close();
        }
    }

    /// The request's id: the inbound `x-request-id` when present, else
    /// one minted as `jocal-<boot>-<n>`. The boot stamp (hashed from
    /// the build stamp, start time and a process-local launch counter)
    /// makes ids unique across restarts, while the counter suffix
    /// stays deterministic within a run — two requests in one run
    /// never collide, and two runs' logs are distinguishable.
    fn request_id_for(&self, req: &Request) -> String {
        match &req.request_id {
            Some(id) => id.clone(),
            None => {
                let n = self.next_request_id.fetch_add(1, Ordering::Relaxed);
                format!("jocal-{:08x}-{n:012x}", self.boot_stamp)
            }
        }
    }

    /// Fires a trigger into every cell's flight recorder. Only called
    /// on rare transitions (breach latch, caught panic), never on the
    /// per-request path.
    fn trigger_recorders(&self, kind: &str, detail: &str) {
        for recorder in &self.recorders {
            recorder.trigger(kind, None, format_args!("{detail}"));
        }
    }

    /// Takes one rolling sample at `at_us` and re-evaluates every SLO,
    /// latching the breach flag `/readyz` reads. No-op when telemetry
    /// is disabled.
    fn observe_at(&self, at_us: u64) {
        let Some(runtime) = &self.obs_runtime else {
            return;
        };
        let highwater = self
            .cells
            .iter()
            .map(|c| c.handle.highwater())
            .max()
            .unwrap_or(0);
        self.obs.queue_highwater.set(highwater as f64);
        let mut guard = runtime.lock().expect("obs runtime poisoned");
        let rt = &mut *guard;
        rt.collector.sample(at_us);
        if !rt.slo.is_empty() {
            rt.slo.evaluate(&rt.collector, &self.telemetry);
            let breached = rt.slo.any_breached();
            let was = self.slo_breached.swap(breached, Ordering::SeqCst);
            if breached && !was {
                // New breach: dump into every cell's flight recorder
                // exactly once per Ok->Breach transition.
                let names: Vec<&str> = rt
                    .slo
                    .statuses()
                    .iter()
                    .filter(|s| s.state == SloState::Breach)
                    .map(|s| s.name.as_str())
                    .collect();
                self.trigger_recorders("slo_breach", &format!("slo breach: {}", names.join(",")));
            }
        }
    }

    /// Worst-case (largest) drain-derived retry hint across all cells,
    /// used when shedding at accept where no single cell is implied.
    fn retry_after_hint(&self) -> u64 {
        self.cells
            .iter()
            .map(|c| c.handle.suggested_retry_after_secs())
            .max()
            .unwrap_or(RETRY_AFTER_MIN_SECS)
    }

    fn note_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        self.obs.rejected.incr();
    }

    fn note_malformed(&self) {
        self.malformed.fetch_add(1, Ordering::Relaxed);
        self.obs.malformed.incr();
    }

    fn stats(&self) -> GatewayStats {
        GatewayStats {
            requests: self.requests.load(Ordering::Relaxed),
            rejected_overload: self.rejected.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            worker_panics: self.panics.load(Ordering::Relaxed),
            queue_depth_highwater: self
                .cells
                .iter()
                .map(|c| c.handle.highwater())
                .max()
                .unwrap_or(0),
        }
    }
}

/// A clonable control handle: drain and inspect a running gateway from
/// another thread (a Ctrl-C monitor, a test harness) while the owner
/// blocks in [`Gateway::join`].
#[derive(Clone)]
pub struct GatewayHandle {
    shared: Arc<Shared>,
}

impl GatewayHandle {
    /// Starts a graceful drain: stop accepting, close every ingestion
    /// ring. Idempotent.
    pub fn drain(&self) {
        self.shared.drain();
    }

    /// Whether a drain has started.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Current gateway counters.
    #[must_use]
    pub fn stats(&self) -> GatewayStats {
        self.shared.stats()
    }

    /// Takes one rolling sample at an explicit timestamp and
    /// re-evaluates every SLO. Deterministic tests drive the whole
    /// Warn → Breach → recover timeline through this; production uses
    /// the background sampler (same code path, wall-clock stamps).
    pub fn observe_at(&self, at_us: u64) {
        self.shared.observe_at(at_us);
    }

    /// [`Self::observe_at`] with the current monotonic timestamp.
    pub fn observe_now(&self) {
        self.shared.observe_at(monotonic_us());
    }

    /// Whether any SLO is currently in breach (what flips `/readyz`).
    #[must_use]
    pub fn slo_breached(&self) -> bool {
        self.shared.slo_breached.load(Ordering::SeqCst)
    }

    /// Latest evaluation of every configured SLO. Empty when telemetry
    /// is disabled or no SLOs are configured.
    #[must_use]
    pub fn slo_statuses(&self) -> Vec<SloStatus> {
        match &self.shared.obs_runtime {
            Some(runtime) => runtime
                .lock()
                .expect("obs runtime poisoned")
                .slo
                .statuses()
                .to_vec(),
            None => Vec::new(),
        }
    }
}

/// A running gateway: HTTP frontend plus the serving cluster behind it.
pub struct Gateway {
    shared: Arc<Shared>,
    addr: SocketAddr,
    conns: Arc<ConnQueue>,
    serve: JoinHandle<Result<ClusterReport, ClusterError>>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Gateway {
    /// Binds the listener, starts the serving cluster on its own thread
    /// and spawns the acceptor + worker pool. Returns once the gateway
    /// is accepting connections.
    ///
    /// # Errors
    ///
    /// Configuration errors (no cells, unbounded cells) and bind
    /// failures.
    pub fn start(
        config: &GatewayConfig,
        cluster: ClusterConfig,
        cells: Vec<CellSpec>,
        telemetry: &Telemetry,
    ) -> Result<Gateway, GatewayError> {
        if cells.is_empty() {
            return Err(GatewayError::config("cells", "a gateway needs >= 1 cell"));
        }
        if config.http_workers == 0 {
            return Err(GatewayError::config("http_workers", "need >= 1 worker"));
        }
        if config.queue_capacity == 0 {
            return Err(GatewayError::config("queue_capacity", "need >= 1 slot"));
        }
        for (id, cell) in cells.iter().enumerate() {
            if cell.expected_slots.is_none() && cell.config.max_slots.is_none() {
                return Err(GatewayError::config(
                    "cells",
                    format!("cell {id} needs expected_slots or max_slots"),
                ));
            }
        }
        // Resolve every gateway metric up front so a 0-traffic scrape
        // already exposes the full name set.
        let obs = GatewayObs::resolve(telemetry);
        telemetry.register_build_info();

        let mut ingress = Vec::with_capacity(cells.len());
        let mut cluster_cells = Vec::with_capacity(cells.len());
        let mut recorders = Vec::with_capacity(cells.len());
        for (id, spec) in cells.into_iter().enumerate() {
            let depth_gauge = telemetry.gauge_with("gateway_queue_depth", "cell", &id.to_string());
            let (handle, queue) = bounded_slot_ring(config.queue_capacity, depth_gauge);
            let mut source = NetworkDemandSource::new(queue)
                .with_attribution(telemetry, id)
                .with_recorder(spec.recorder.clone());
            if let Some(slots) = spec.expected_slots {
                source = source.with_expected_slots(slots);
            }
            let template = DemandTrace::zeros(&spec.network, 1);
            ingress.push(CellIngress { handle, template });
            cluster_cells.push(
                Cell::new(
                    spec.network,
                    spec.cost_model,
                    spec.config,
                    Box::new(source),
                    spec.policy,
                )
                .with_initial(spec.initial)
                .with_sink(spec.sink)
                .with_recorder(spec.recorder.clone()),
            );
            recorders.push(spec.recorder);
        }

        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shared = Arc::new(Shared {
            cells: ingress,
            telemetry: telemetry.clone(),
            obs,
            obs_runtime: config.observability.build_runtime(telemetry),
            slo_breached: AtomicBool::new(false),
            next_request_id: AtomicU64::new(1),
            boot_stamp: boot_stamp(),
            recorders,
            debug_endpoints: config.debug_endpoints,
            draining: AtomicBool::new(false),
            http_stop: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            limits: HttpLimits {
                max_body_bytes: config.max_body_bytes,
                max_head_bytes: HttpLimits::default().max_head_bytes,
            },
            read_timeout: config.read_timeout,
        });

        let serve_telemetry = telemetry.clone();
        let serve = std::thread::Builder::new()
            .name("jocal-gateway-serve".to_string())
            .spawn(move || {
                ClusterEngine::new(cluster)
                    .with_telemetry(serve_telemetry)
                    .run(cluster_cells)
            })?;

        let conns = Arc::new(ConnQueue::new(config.pending_connections));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("jocal-gateway-accept".to_string())
                .spawn(move || acceptor_loop(&shared, &listener, &conns))?
        };
        let mut workers = (0..config.http_workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let conns = Arc::clone(&conns);
                std::thread::Builder::new()
                    .name(format!("jocal-gateway-http-{i}"))
                    .spawn(move || worker_loop(&shared, &conns))
            })
            .collect::<Result<Vec<_>, _>>()?;
        if shared.obs_runtime.is_some() {
            if let Some(interval) = config.observability.sample_interval {
                let shared = Arc::clone(&shared);
                workers.push(
                    std::thread::Builder::new()
                        .name("jocal-gateway-obs".to_string())
                        .spawn(move || {
                            while !shared.http_stop.load(Ordering::SeqCst) {
                                shared.observe_at(monotonic_us());
                                std::thread::sleep(interval);
                            }
                        })?,
                );
            }
        }

        Ok(Gateway {
            shared,
            addr,
            conns,
            serve,
            acceptor,
            workers,
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A clonable control handle for this gateway.
    #[must_use]
    pub fn handle(&self) -> GatewayHandle {
        GatewayHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Starts a graceful drain (same as `POST /v1/shutdown`).
    pub fn drain(&self) {
        self.shared.drain();
    }

    /// Whether the serving cluster has finished (all cells reached
    /// their horizon or the drain completed).
    #[must_use]
    pub fn serve_finished(&self) -> bool {
        self.serve.is_finished()
    }

    /// Waits for the serving cluster to finish, then tears the HTTP
    /// frontend down and returns the cluster report plus final gateway
    /// stats. Without a [`Gateway::drain`] this blocks until every cell
    /// has received its expected slots.
    ///
    /// # Errors
    ///
    /// Propagates cluster failures (gateway stats are lost in that
    /// case; per-cell sinks have been flushed by the cluster engine).
    ///
    /// # Panics
    ///
    /// Panics if a gateway thread itself panicked (handler panics are
    /// caught and counted instead).
    pub fn join(self) -> Result<(ClusterReport, GatewayStats), GatewayError> {
        let report = self.serve.join().expect("serve thread panicked")?;
        // Serving is done: stop accepting, wake workers, reap threads.
        self.shared.http_stop.store(true, Ordering::SeqCst);
        self.conns.close();
        self.acceptor.join().expect("acceptor panicked");
        for worker in self.workers {
            worker.join().expect("http worker panicked");
        }
        Ok((report, self.shared.stats()))
    }
}

fn acceptor_loop(shared: &Shared, listener: &TcpListener, conns: &ConnQueue) {
    while !shared.http_stop.load(Ordering::SeqCst) && !shared.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if let Err(stream) = conns.try_push(stream) {
                    // Accept-queue overload: shed immediately, hinting
                    // the worst-case ring drain time since no cell is
                    // implied before the request is even read.
                    shared.note_rejected();
                    let resp = Response {
                        extra: vec![("Retry-After", shared.retry_after_hint().to_string())],
                        close: true,
                        ..Response::new(429, "Too Many Requests", "accept queue full\n")
                    };
                    let mut stream = stream;
                    let _ = write_response(&mut stream, &resp, false);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    }
}

/// A per-boot stamp mixed into generated request ids: an FNV-1a hash
/// of the build stamp, the gateway's start time and a process-local
/// launch counter, folded to 32 bits. Two gateway boots (restarts, or
/// two gateways in one process) get distinct stamps, so
/// `jocal-<boot>-<n>` ids never collide across incidents even though
/// the `n` counter deterministically restarts at 1 every run.
fn boot_stamp() -> u32 {
    static LAUNCHES: AtomicU64 = AtomicU64::new(0);
    let build = BuildInfo::current();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in build.git_sha.bytes().chain(build.version.bytes()) {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= monotonic_us().wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= LAUNCHES
        .fetch_add(1, Ordering::Relaxed)
        .wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 29;
    (h ^ (h >> 32)) as u32
}

fn worker_loop(shared: &Shared, conns: &ConnQueue) {
    while let Some(stream) = conns.pop_blocking() {
        // A handler bug must cost one connection, never the worker: the
        // panic is caught, counted and surfaced in /metrics.
        let result = catch_unwind(AssertUnwindSafe(|| handle_connection(shared, stream)));
        if result.is_err() {
            shared.panics.fetch_add(1, Ordering::Relaxed);
            shared.obs.panics.incr();
            shared.trigger_recorders(
                "worker_panic",
                "http worker caught a panic; connection dropped",
            );
        }
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.read_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut write = stream;
    loop {
        match read_request(&mut reader, &mut write, shared.limits) {
            Ok(ReadOutcome::Request(req)) => {
                let started = Instant::now();
                shared.requests.fetch_add(1, Ordering::Relaxed);
                shared.obs.requests.incr();
                let rid = shared.request_id_for(&req);
                let mut resp = route(shared, &req, &rid);
                resp.extra.push(("X-Request-Id", rid));
                let us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                shared.obs.request_us.observe(us);
                // Drains close connections after the in-flight response
                // so join() never waits on idle keep-alives.
                let alive =
                    req.keep_alive && !resp.close && !shared.draining.load(Ordering::SeqCst);
                if write_response(&mut write, &resp, alive).is_err() || !alive {
                    return;
                }
            }
            Ok(ReadOutcome::Closed) => return,
            Ok(ReadOutcome::Malformed(reason)) => {
                shared.note_malformed();
                let resp = Response {
                    close: true,
                    ..Response::new(400, "Bad Request", format!("{reason}\n"))
                };
                let _ = write_response(&mut write, &resp, false);
                return;
            }
            Ok(ReadOutcome::TooLarge) => {
                shared.note_malformed();
                let resp = Response {
                    close: true,
                    ..Response::new(413, "Payload Too Large", "request body too large\n")
                };
                let _ = write_response(&mut write, &resp, false);
                return;
            }
            Err(_) => return,
        }
    }
}

fn route(shared: &Shared, req: &Request, rid: &str) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::new(200, "OK", "ok\n"),
        ("GET", "/readyz") => {
            if shared.draining.load(Ordering::SeqCst) {
                Response::new(503, "Service Unavailable", "draining\n")
            } else if shared.slo_breached.load(Ordering::SeqCst) {
                Response::new(503, "Service Unavailable", "slo breach\n")
            } else {
                Response::new(200, "OK", "ready\n")
            }
        }
        ("GET", "/metrics") => metrics_response(shared),
        ("GET", "/debug/vars") => debug_vars_response(shared),
        ("POST", "/v1/demand") => ingest(shared, req, rid),
        // Fault injection, opt-in via GatewayConfig::debug_endpoints:
        // panics inside the handler so the worker's catch_unwind path
        // (count, metric, flight-recorder trigger) runs for real.
        ("POST", "/debug/panic") if shared.debug_endpoints => {
            panic!("debug-induced worker panic (request {rid})")
        }
        ("POST", "/v1/shutdown") => {
            shared.drain();
            Response {
                close: true,
                ..Response::json(200, "OK", "{\"draining\":true}\n")
            }
        }
        (
            _,
            "/healthz" | "/readyz" | "/metrics" | "/debug/vars" | "/v1/demand" | "/v1/shutdown",
        ) => Response::new(405, "Method Not Allowed", "method not allowed\n"),
        _ => Response::new(404, "Not Found", "unknown path\n"),
    }
}

fn metrics_response(shared: &Shared) -> Response {
    let highwater = shared
        .cells
        .iter()
        .map(|c| c.handle.highwater())
        .max()
        .unwrap_or(0);
    shared.obs.queue_highwater.set(highwater as f64);
    let mut body = Vec::new();
    if shared.telemetry.write_prometheus(&mut body).is_err() {
        return Response::new(500, "Internal Server Error", "export failed\n");
    }
    if let Some(runtime) = &shared.obs_runtime {
        let rt = runtime.lock().expect("obs runtime poisoned");
        if rt.collector.write_prometheus_windows(&mut body).is_err() {
            return Response::new(500, "Internal Server Error", "export failed\n");
        }
    }
    Response {
        content_type: PROMETHEUS_CONTENT_TYPE,
        ..Response::new(200, "OK", body)
    }
}

/// `GET /debug/vars`: one JSON document with the build stamp, readiness,
/// every rolling window, the latest gauges and the SLO statuses —
/// machine-readable state for `jocal slo` / `jocal top` without parsing
/// Prometheus text.
fn debug_vars_response(shared: &Shared) -> Response {
    let Some(runtime) = &shared.obs_runtime else {
        return Response::json(200, "OK", "{\"telemetry\":\"disabled\"}\n");
    };
    let rt = runtime.lock().expect("obs runtime poisoned");
    let ready =
        !shared.draining.load(Ordering::SeqCst) && !shared.slo_breached.load(Ordering::SeqCst);
    let body = format!(
        "{{\"build\":{},\"ready\":{ready},\"at_us\":{},\"windows\":{},\"gauges\":{},\"slos\":{}}}\n",
        BuildInfo::current().json(),
        rt.collector.latest_at_us().unwrap_or(0),
        rt.collector.windows_json(),
        rt.collector.gauges_json(),
        rt.slo.statuses_json(),
    );
    Response::json(200, "OK", body)
}

fn ingest(shared: &Shared, req: &Request, rid: &str) -> Response {
    let cell_id = match req.query_param("cell") {
        Some(raw) => match raw.parse::<usize>() {
            Ok(id) => id,
            Err(_) => {
                shared.note_malformed();
                return Response::new(400, "Bad Request", "bad cell id\n");
            }
        },
        // Unambiguous on a single-cell gateway; required otherwise.
        None if shared.cells.len() == 1 => 0,
        None => {
            shared.note_malformed();
            return Response::new(400, "Bad Request", "missing cell=<id> query parameter\n");
        }
    };
    let Some(cell) = shared.cells.get(cell_id) else {
        return Response::new(404, "Not Found", format!("unknown cell {cell_id}\n"));
    };
    let slots = match parse_demand_body(&req.body, &cell.template) {
        Ok(slots) => slots,
        Err(e) => {
            shared.note_malformed();
            return Response::new(400, "Bad Request", format!("bad demand body: {e}\n"));
        }
    };
    let accepted = slots.len();
    let tag: SlotTag = if shared.telemetry.is_enabled() {
        Some(Arc::from(rid))
    } else {
        None
    };
    match cell.handle.try_push_batch_tagged(slots, tag) {
        Ok(depth) => Response::json(
            202,
            "Accepted",
            format!("{{\"cell\":{cell_id},\"accepted\":{accepted},\"depth\":{depth}}}\n"),
        ),
        Err(PushError::Overloaded { depth, capacity }) => {
            shared.note_rejected();
            let retry = cell.handle.suggested_retry_after_secs();
            shared.telemetry.event(
                "gateway_shed",
                &[
                    ("request_id", FieldValue::Text(rid.to_string())),
                    ("cell", FieldValue::U64(cell_id as u64)),
                    ("depth", FieldValue::U64(depth as u64)),
                    ("capacity", FieldValue::U64(capacity as u64)),
                    ("retry_after_secs", FieldValue::U64(retry)),
                ],
            );
            Response {
                extra: vec![("Retry-After", retry.to_string())],
                ..Response::new(
                    429,
                    "Too Many Requests",
                    format!("cell {cell_id} overloaded: depth {depth}/{capacity}\n"),
                )
            }
        }
        Err(PushError::Closed) => Response {
            close: true,
            ..Response::new(503, "Service Unavailable", "draining\n")
        },
    }
}

/// Parses a `POST /v1/demand` body — the on-disk jocal demand-trace CSV
/// format ([`jocal_sim::trace::write_trace`]) — into single-slot traces
/// shaped like `template`. All-or-nothing: a malformed row rejects the
/// whole batch before anything is enqueued.
fn parse_demand_body(body: &[u8], template: &DemandTrace) -> Result<Vec<DemandTrace>, ServeError> {
    let mut reader = ChunkedTraceReader::new(body)?;
    let mut out = template.clone();
    let mut slots = Vec::new();
    while reader.next_slot(&mut out)? {
        slots.push(out.clone());
    }
    Ok(slots)
}
