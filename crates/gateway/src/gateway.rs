//! The gateway runtime: acceptor, worker pool, router and drain.
//!
//! ```text
//!                     ┌───────────────┐   bounded conn    ┌──────────┐
//!  TCP clients ─────▶ │ acceptor      │ ────── queue ───▶ │ worker×W │
//!                     │ (nonblocking) │    (shed: 429)    │ HTTP/1.1 │
//!                     └───────────────┘                   └────┬─────┘
//!                                                              │ POST /v1/demand?cell=i
//!                                            bounded per-cell  ▼
//!                   ┌──────────────┐   slot rings   ┌────────────────┐
//!                   │ serve thread │ ◀── (shed: ────│ IngressHandle  │
//!                   │ ClusterEngine│      429)      │   per cell     │
//!                   └──────────────┘                └────────────────┘
//! ```
//!
//! Overload semantics: both admission points are bounded and shed with
//! HTTP 429 + `Retry-After` — a full connection queue sheds at accept,
//! a full per-cell slot ring sheds the whole demand batch. Drain
//! protocol (`POST /v1/shutdown` or [`Gateway::drain`]): stop
//! accepting, close every ring; cells consume what was admitted, emit
//! summaries and flush sinks; [`Gateway::join`] then reaps the serve
//! thread, the acceptor and the workers.

use crate::error::GatewayError;
use crate::http::{read_request, write_response, HttpLimits, ReadOutcome, Request, Response};
use crate::ring::{bounded_slot_ring, IngressHandle, PushError};
use crate::source::NetworkDemandSource;
use jocal_cluster::{Cell, ClusterConfig, ClusterEngine, ClusterError, ClusterReport};
use jocal_core::plan::CacheState;
use jocal_core::CostModel;
use jocal_online::policy::OnlinePolicy;
use jocal_serve::metrics::{MetricsSink, NullSink};
use jocal_serve::source::{ChunkedTraceReader, DemandSource as _};
use jocal_serve::{ServeConfig, ServeError};
use jocal_sim::demand::DemandTrace;
use jocal_sim::topology::Network;
use jocal_telemetry::{Counter, Gauge, Histogram, Telemetry, PROMETHEUS_CONTENT_TYPE};
use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// HTTP-side knobs. Serving-side knobs live in each cell's
/// [`ServeConfig`].
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Gateway::local_addr`]).
    pub addr: String,
    /// HTTP worker threads (each owns one connection at a time).
    pub http_workers: usize,
    /// Per-cell slot-ring capacity — the overload watermark `Q`.
    pub queue_capacity: usize,
    /// Accepted-but-unclaimed connection bound; beyond it the acceptor
    /// sheds with 429.
    pub pending_connections: usize,
    /// Per-request read deadline (socket read timeout).
    pub read_timeout: Duration,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            addr: "127.0.0.1:0".to_string(),
            http_workers: 4,
            queue_capacity: 256,
            pending_connections: 128,
            read_timeout: Duration::from_secs(5),
            max_body_bytes: 16 << 20,
        }
    }
}

/// Everything one serving cell behind the gateway needs — the same
/// collaborators as a [`jocal_cluster::Cell`], minus the demand source,
/// which the gateway supplies as a [`NetworkDemandSource`] fed by
/// `POST /v1/demand?cell=<id>`. Cell ids are positions in the
/// `Vec<CellSpec>` handed to [`Gateway::start`], matching the cluster
/// convention.
pub struct CellSpec {
    pub(crate) network: Network,
    pub(crate) cost_model: CostModel,
    pub(crate) config: ServeConfig,
    pub(crate) policy: Box<dyn OnlinePolicy + Send>,
    pub(crate) initial: CacheState,
    pub(crate) sink: Box<dyn MetricsSink + Send>,
    pub(crate) expected_slots: Option<usize>,
}

impl std::fmt::Debug for CellSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CellSpec")
            .field("policy", &self.policy.name())
            .field("config", &self.config)
            .field("expected_slots", &self.expected_slots)
            .finish_non_exhaustive()
    }
}

impl CellSpec {
    /// A cell with an empty initial cache and a [`NullSink`].
    #[must_use]
    pub fn new(
        network: Network,
        cost_model: CostModel,
        config: ServeConfig,
        policy: Box<dyn OnlinePolicy + Send>,
    ) -> Self {
        let initial = CacheState::empty(&network);
        CellSpec {
            network,
            cost_model,
            config,
            policy,
            initial,
            sink: Box::new(NullSink),
            expected_slots: None,
        }
    }

    /// Overrides the initial cache state (defaults to empty).
    #[must_use]
    pub fn with_initial(mut self, initial: CacheState) -> Self {
        self.initial = initial;
        self
    }

    /// Attaches a metrics sink (the cell's full record stream).
    #[must_use]
    pub fn with_sink(mut self, sink: Box<dyn MetricsSink + Send>) -> Self {
        self.sink = sink;
        self
    }

    /// Declares how many slots the network will deliver: the cell plans
    /// against this horizon (exactly like a finite trace) and the run
    /// completes by itself once they arrive. Without it the cell's
    /// `max_slots` must be set, and only a drain ends the stream.
    #[must_use]
    pub fn with_expected_slots(mut self, slots: usize) -> Self {
        self.expected_slots = Some(slots);
        self
    }
}

/// Point-in-time gateway counters, independent of telemetry (they are
/// tracked even when the telemetry layer is disabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GatewayStats {
    /// Requests fully parsed (all endpoints).
    pub requests: u64,
    /// Requests shed with 429 — full connection queue or full slot
    /// ring.
    pub rejected_overload: u64,
    /// Malformed/oversized requests rejected with 4xx.
    pub malformed: u64,
    /// Worker panics caught (always 0 unless a handler bug slips in).
    pub worker_panics: u64,
    /// Highest slot-ring depth observed across all cells.
    pub queue_depth_highwater: usize,
}

/// Telemetry handles resolved once at startup; recording is lock-free
/// and a no-op when telemetry is disabled.
#[derive(Debug, Default)]
struct GatewayObs {
    requests: Counter,
    rejected: Counter,
    malformed: Counter,
    panics: Counter,
    request_us: Histogram,
    queue_highwater: Gauge,
}

impl GatewayObs {
    fn resolve(telemetry: &Telemetry) -> Self {
        GatewayObs {
            requests: telemetry.counter("gateway_requests"),
            rejected: telemetry.counter("gateway_rejected_overload"),
            malformed: telemetry.counter("gateway_malformed_total"),
            panics: telemetry.counter("gateway_worker_panics_total"),
            request_us: telemetry.histogram("gateway_request_us"),
            queue_highwater: telemetry.gauge("gateway_queue_depth_highwater"),
        }
    }
}

/// One cell's ingestion state as seen by the HTTP side.
struct CellIngress {
    handle: IngressHandle,
    /// Single-slot buffer template with the cell's exact (n, m, k)
    /// layout; demand bodies are parsed into clones of it.
    template: DemandTrace,
}

/// Bounded queue of accepted-but-unclaimed connections.
struct ConnQueue {
    state: Mutex<(VecDeque<TcpStream>, bool)>,
    available: Condvar,
    capacity: usize,
}

impl ConnQueue {
    fn new(capacity: usize) -> Self {
        ConnQueue {
            state: Mutex::new((VecDeque::new(), false)),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Hands the stream back when the queue is full or closed.
    fn try_push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut state = self.state.lock().expect("conn queue poisoned");
        if state.1 || state.0.len() >= self.capacity {
            return Err(stream);
        }
        state.0.push_back(stream);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    fn close(&self) {
        self.state.lock().expect("conn queue poisoned").1 = true;
        self.available.notify_all();
    }

    fn pop_blocking(&self) -> Option<TcpStream> {
        let mut state = self.state.lock().expect("conn queue poisoned");
        loop {
            if let Some(stream) = state.0.pop_front() {
                return Some(stream);
            }
            if state.1 {
                return None;
            }
            state = self.available.wait(state).expect("conn queue poisoned");
        }
    }
}

struct Shared {
    cells: Vec<CellIngress>,
    telemetry: Telemetry,
    obs: GatewayObs,
    draining: AtomicBool,
    http_stop: AtomicBool,
    requests: AtomicU64,
    rejected: AtomicU64,
    malformed: AtomicU64,
    panics: AtomicU64,
    limits: HttpLimits,
    read_timeout: Duration,
}

impl Shared {
    fn drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        for cell in &self.cells {
            cell.handle.close();
        }
    }

    fn note_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        self.obs.rejected.incr();
    }

    fn note_malformed(&self) {
        self.malformed.fetch_add(1, Ordering::Relaxed);
        self.obs.malformed.incr();
    }

    fn stats(&self) -> GatewayStats {
        GatewayStats {
            requests: self.requests.load(Ordering::Relaxed),
            rejected_overload: self.rejected.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            worker_panics: self.panics.load(Ordering::Relaxed),
            queue_depth_highwater: self
                .cells
                .iter()
                .map(|c| c.handle.highwater())
                .max()
                .unwrap_or(0),
        }
    }
}

/// A clonable control handle: drain and inspect a running gateway from
/// another thread (a Ctrl-C monitor, a test harness) while the owner
/// blocks in [`Gateway::join`].
#[derive(Clone)]
pub struct GatewayHandle {
    shared: Arc<Shared>,
}

impl GatewayHandle {
    /// Starts a graceful drain: stop accepting, close every ingestion
    /// ring. Idempotent.
    pub fn drain(&self) {
        self.shared.drain();
    }

    /// Whether a drain has started.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Current gateway counters.
    #[must_use]
    pub fn stats(&self) -> GatewayStats {
        self.shared.stats()
    }
}

/// A running gateway: HTTP frontend plus the serving cluster behind it.
pub struct Gateway {
    shared: Arc<Shared>,
    addr: SocketAddr,
    conns: Arc<ConnQueue>,
    serve: JoinHandle<Result<ClusterReport, ClusterError>>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Gateway {
    /// Binds the listener, starts the serving cluster on its own thread
    /// and spawns the acceptor + worker pool. Returns once the gateway
    /// is accepting connections.
    ///
    /// # Errors
    ///
    /// Configuration errors (no cells, unbounded cells) and bind
    /// failures.
    pub fn start(
        config: &GatewayConfig,
        cluster: ClusterConfig,
        cells: Vec<CellSpec>,
        telemetry: &Telemetry,
    ) -> Result<Gateway, GatewayError> {
        if cells.is_empty() {
            return Err(GatewayError::config("cells", "a gateway needs >= 1 cell"));
        }
        if config.http_workers == 0 {
            return Err(GatewayError::config("http_workers", "need >= 1 worker"));
        }
        if config.queue_capacity == 0 {
            return Err(GatewayError::config("queue_capacity", "need >= 1 slot"));
        }
        for (id, cell) in cells.iter().enumerate() {
            if cell.expected_slots.is_none() && cell.config.max_slots.is_none() {
                return Err(GatewayError::config(
                    "cells",
                    format!("cell {id} needs expected_slots or max_slots"),
                ));
            }
        }
        // Resolve every gateway metric up front so a 0-traffic scrape
        // already exposes the full name set.
        let obs = GatewayObs::resolve(telemetry);

        let mut ingress = Vec::with_capacity(cells.len());
        let mut cluster_cells = Vec::with_capacity(cells.len());
        for (id, spec) in cells.into_iter().enumerate() {
            let depth_gauge = telemetry.gauge_with("gateway_queue_depth", "cell", &id.to_string());
            let (handle, queue) = bounded_slot_ring(config.queue_capacity, depth_gauge);
            let mut source = NetworkDemandSource::new(queue);
            if let Some(slots) = spec.expected_slots {
                source = source.with_expected_slots(slots);
            }
            let template = DemandTrace::zeros(&spec.network, 1);
            ingress.push(CellIngress { handle, template });
            cluster_cells.push(
                Cell::new(
                    spec.network,
                    spec.cost_model,
                    spec.config,
                    Box::new(source),
                    spec.policy,
                )
                .with_initial(spec.initial)
                .with_sink(spec.sink),
            );
        }

        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shared = Arc::new(Shared {
            cells: ingress,
            telemetry: telemetry.clone(),
            obs,
            draining: AtomicBool::new(false),
            http_stop: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            limits: HttpLimits {
                max_body_bytes: config.max_body_bytes,
                max_head_bytes: HttpLimits::default().max_head_bytes,
            },
            read_timeout: config.read_timeout,
        });

        let serve_telemetry = telemetry.clone();
        let serve = std::thread::Builder::new()
            .name("jocal-gateway-serve".to_string())
            .spawn(move || {
                ClusterEngine::new(cluster)
                    .with_telemetry(serve_telemetry)
                    .run(cluster_cells)
            })?;

        let conns = Arc::new(ConnQueue::new(config.pending_connections));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("jocal-gateway-accept".to_string())
                .spawn(move || acceptor_loop(&shared, &listener, &conns))?
        };
        let workers = (0..config.http_workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let conns = Arc::clone(&conns);
                std::thread::Builder::new()
                    .name(format!("jocal-gateway-http-{i}"))
                    .spawn(move || worker_loop(&shared, &conns))
            })
            .collect::<Result<Vec<_>, _>>()?;

        Ok(Gateway {
            shared,
            addr,
            conns,
            serve,
            acceptor,
            workers,
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A clonable control handle for this gateway.
    #[must_use]
    pub fn handle(&self) -> GatewayHandle {
        GatewayHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Starts a graceful drain (same as `POST /v1/shutdown`).
    pub fn drain(&self) {
        self.shared.drain();
    }

    /// Whether the serving cluster has finished (all cells reached
    /// their horizon or the drain completed).
    #[must_use]
    pub fn serve_finished(&self) -> bool {
        self.serve.is_finished()
    }

    /// Waits for the serving cluster to finish, then tears the HTTP
    /// frontend down and returns the cluster report plus final gateway
    /// stats. Without a [`Gateway::drain`] this blocks until every cell
    /// has received its expected slots.
    ///
    /// # Errors
    ///
    /// Propagates cluster failures (gateway stats are lost in that
    /// case; per-cell sinks have been flushed by the cluster engine).
    ///
    /// # Panics
    ///
    /// Panics if a gateway thread itself panicked (handler panics are
    /// caught and counted instead).
    pub fn join(self) -> Result<(ClusterReport, GatewayStats), GatewayError> {
        let report = self.serve.join().expect("serve thread panicked")?;
        // Serving is done: stop accepting, wake workers, reap threads.
        self.shared.http_stop.store(true, Ordering::SeqCst);
        self.conns.close();
        self.acceptor.join().expect("acceptor panicked");
        for worker in self.workers {
            worker.join().expect("http worker panicked");
        }
        Ok((report, self.shared.stats()))
    }
}

fn acceptor_loop(shared: &Shared, listener: &TcpListener, conns: &ConnQueue) {
    while !shared.http_stop.load(Ordering::SeqCst) && !shared.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if let Err(stream) = conns.try_push(stream) {
                    // Accept-queue overload: shed immediately.
                    shared.note_rejected();
                    let resp = Response {
                        extra: vec![("Retry-After", "1".to_string())],
                        close: true,
                        ..Response::new(429, "Too Many Requests", "accept queue full\n")
                    };
                    let mut stream = stream;
                    let _ = write_response(&mut stream, &resp, false);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    }
}

fn worker_loop(shared: &Shared, conns: &ConnQueue) {
    while let Some(stream) = conns.pop_blocking() {
        // A handler bug must cost one connection, never the worker: the
        // panic is caught, counted and surfaced in /metrics.
        let result = catch_unwind(AssertUnwindSafe(|| handle_connection(shared, stream)));
        if result.is_err() {
            shared.panics.fetch_add(1, Ordering::Relaxed);
            shared.obs.panics.incr();
        }
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.read_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut write = stream;
    loop {
        match read_request(&mut reader, &mut write, shared.limits) {
            Ok(ReadOutcome::Request(req)) => {
                let started = Instant::now();
                shared.requests.fetch_add(1, Ordering::Relaxed);
                shared.obs.requests.incr();
                let resp = route(shared, &req);
                let us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                shared.obs.request_us.observe(us);
                // Drains close connections after the in-flight response
                // so join() never waits on idle keep-alives.
                let alive =
                    req.keep_alive && !resp.close && !shared.draining.load(Ordering::SeqCst);
                if write_response(&mut write, &resp, alive).is_err() || !alive {
                    return;
                }
            }
            Ok(ReadOutcome::Closed) => return,
            Ok(ReadOutcome::Malformed(reason)) => {
                shared.note_malformed();
                let resp = Response {
                    close: true,
                    ..Response::new(400, "Bad Request", format!("{reason}\n"))
                };
                let _ = write_response(&mut write, &resp, false);
                return;
            }
            Ok(ReadOutcome::TooLarge) => {
                shared.note_malformed();
                let resp = Response {
                    close: true,
                    ..Response::new(413, "Payload Too Large", "request body too large\n")
                };
                let _ = write_response(&mut write, &resp, false);
                return;
            }
            Err(_) => return,
        }
    }
}

fn route(shared: &Shared, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::new(200, "OK", "ok\n"),
        ("GET", "/readyz") => {
            if shared.draining.load(Ordering::SeqCst) {
                Response::new(503, "Service Unavailable", "draining\n")
            } else {
                Response::new(200, "OK", "ready\n")
            }
        }
        ("GET", "/metrics") => metrics_response(shared),
        ("POST", "/v1/demand") => ingest(shared, req),
        ("POST", "/v1/shutdown") => {
            shared.drain();
            Response {
                close: true,
                ..Response::json(200, "OK", "{\"draining\":true}\n")
            }
        }
        (_, "/healthz" | "/readyz" | "/metrics" | "/v1/demand" | "/v1/shutdown") => {
            Response::new(405, "Method Not Allowed", "method not allowed\n")
        }
        _ => Response::new(404, "Not Found", "unknown path\n"),
    }
}

fn metrics_response(shared: &Shared) -> Response {
    let highwater = shared
        .cells
        .iter()
        .map(|c| c.handle.highwater())
        .max()
        .unwrap_or(0);
    shared.obs.queue_highwater.set(highwater as f64);
    let mut body = Vec::new();
    if shared.telemetry.write_prometheus(&mut body).is_err() {
        return Response::new(500, "Internal Server Error", "export failed\n");
    }
    Response {
        content_type: PROMETHEUS_CONTENT_TYPE,
        ..Response::new(200, "OK", body)
    }
}

fn ingest(shared: &Shared, req: &Request) -> Response {
    let cell_id = match req.query_param("cell") {
        Some(raw) => match raw.parse::<usize>() {
            Ok(id) => id,
            Err(_) => {
                shared.note_malformed();
                return Response::new(400, "Bad Request", "bad cell id\n");
            }
        },
        // Unambiguous on a single-cell gateway; required otherwise.
        None if shared.cells.len() == 1 => 0,
        None => {
            shared.note_malformed();
            return Response::new(400, "Bad Request", "missing cell=<id> query parameter\n");
        }
    };
    let Some(cell) = shared.cells.get(cell_id) else {
        return Response::new(404, "Not Found", format!("unknown cell {cell_id}\n"));
    };
    let slots = match parse_demand_body(&req.body, &cell.template) {
        Ok(slots) => slots,
        Err(e) => {
            shared.note_malformed();
            return Response::new(400, "Bad Request", format!("bad demand body: {e}\n"));
        }
    };
    let accepted = slots.len();
    match cell.handle.try_push_batch(slots) {
        Ok(depth) => Response::json(
            202,
            "Accepted",
            format!("{{\"cell\":{cell_id},\"accepted\":{accepted},\"depth\":{depth}}}\n"),
        ),
        Err(PushError::Overloaded { depth, capacity }) => {
            shared.note_rejected();
            Response {
                extra: vec![("Retry-After", "1".to_string())],
                ..Response::new(
                    429,
                    "Too Many Requests",
                    format!("cell {cell_id} overloaded: depth {depth}/{capacity}\n"),
                )
            }
        }
        Err(PushError::Closed) => Response {
            close: true,
            ..Response::new(503, "Service Unavailable", "draining\n")
        },
    }
}

/// Parses a `POST /v1/demand` body — the on-disk jocal demand-trace CSV
/// format ([`jocal_sim::trace::write_trace`]) — into single-slot traces
/// shaped like `template`. All-or-nothing: a malformed row rejects the
/// whole batch before anything is enqueued.
fn parse_demand_body(body: &[u8], template: &DemandTrace) -> Result<Vec<DemandTrace>, ServeError> {
    let mut reader = ChunkedTraceReader::new(body)?;
    let mut out = template.clone();
    let mut slots = Vec::new();
    while reader.next_slot(&mut out)? {
        slots.push(out.clone());
    }
    Ok(slots)
}
