//! Closed/open-loop load generation against a running gateway.
//!
//! The generator models a large population of MU request streams: the
//! per-class Poisson intensities of a scenario's demand trace are
//! scaled so the aggregate mean arrival rate across the whole gateway
//! is `streams` requests per slot (one stream ≈ one request per slot),
//! then the slots are shipped as `POST /v1/demand` bodies in the
//! demand-trace CSV wire format. Millions of streams therefore cost
//! the *server* Poisson draws with million-scale means — not the
//! generator millions of sockets.
//!
//! Two pacing modes:
//! * **closed-loop** — each connection sends its next request as soon
//!   as the previous response lands; measures sustained capacity.
//! * **open-loop** — requests are released on a fixed global schedule
//!   regardless of response latency; driving the rate past capacity
//!   measures the shed fraction under overload.

use crate::error::GatewayError;
use crate::http::HttpClient;
use jocal_sim::scenario::ScenarioConfig;
use jocal_sim::trace::write_trace;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Request pacing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadgenMode {
    /// Send the next request as soon as the previous response arrives.
    Closed,
    /// Release requests at a fixed aggregate rate (requests/second),
    /// regardless of response latency.
    Open {
        /// Aggregate release rate across all connections.
        rate_per_sec: f64,
    },
}

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Gateway address, `host:port`.
    pub target: String,
    /// Concurrent keep-alive connections (worker threads).
    pub connections: usize,
    /// Total requests to send across all connections.
    pub requests: u64,
    /// Pacing mode.
    pub mode: LoadgenMode,
    /// Simulated MU request streams: demand intensities are scaled so
    /// the gateway-wide mean arrival rate is this many requests/slot.
    pub streams: u64,
    /// Gateway cells, targeted round-robin (`cell=0..cells`). Must
    /// match the gateway's cell count and scenario seeds for bodies to
    /// have the right shape.
    pub cells: usize,
    /// Demand slots carried per request body.
    pub slots_per_request: usize,
    /// Scenario the demand bodies are generated from (shapes must match
    /// the gateway's cells).
    pub scenario: ScenarioConfig,
    /// Master seed; cell `i` uses `ScenarioConfig::cell_seed(seed, i)`,
    /// exactly like the serving side.
    pub seed: u64,
    /// Per-request I/O timeout.
    pub timeout: Duration,
}

impl LoadgenConfig {
    /// A small closed-loop run against `target` with the default
    /// scenario shape.
    #[must_use]
    pub fn new(target: impl Into<String>) -> Self {
        LoadgenConfig {
            target: target.into(),
            connections: 4,
            requests: 1_000,
            mode: LoadgenMode::Closed,
            streams: 1_000,
            cells: 1,
            slots_per_request: 4,
            scenario: ScenarioConfig::tiny(),
            seed: 42,
            timeout: Duration::from_secs(10),
        }
    }
}

/// Outcome of one load-generator run.
#[derive(Debug, Clone, Serialize)]
pub struct LoadgenReport {
    /// Requests attempted.
    pub requests: u64,
    /// 202-accepted demand batches.
    pub accepted: u64,
    /// 429-shed requests (admission control).
    pub shed: u64,
    /// Transport failures and unexpected statuses.
    pub errors: u64,
    /// Demand slots admitted into the gateway.
    pub slots_sent: u64,
    /// Simulated MU request streams.
    pub streams: u64,
    /// Wall-clock run time.
    pub elapsed_secs: f64,
    /// Completed HTTP round-trips per second.
    pub sustained_rps: f64,
    /// Shed fraction: `shed / (accepted + shed)`, 0 when idle.
    pub shed_fraction: f64,
    /// Request latency percentiles over all completed round-trips.
    pub p50_us: u64,
    /// 99th percentile request latency.
    pub p99_us: u64,
    /// Worst observed request latency.
    pub max_us: u64,
}

/// One pre-serialized request body.
#[derive(Debug, Clone)]
struct Body {
    bytes: Arc<Vec<u8>>,
    slots: u64,
}

/// Per-worker outcome.
#[derive(Debug, Default)]
struct WorkerTally {
    accepted: u64,
    shed: u64,
    errors: u64,
    slots_sent: u64,
    latencies_us: Vec<u64>,
}

/// Runs the generator to completion and reports aggregate results.
///
/// # Errors
///
/// Configuration errors and scenario-build failures. Transport errors
/// during the run are *counted*, not raised — an overloaded or draining
/// gateway is an expected experimental condition.
pub fn run_loadgen(config: &LoadgenConfig) -> Result<LoadgenReport, GatewayError> {
    if config.connections == 0 {
        return Err(GatewayError::config("connections", "need >= 1"));
    }
    if config.cells == 0 {
        return Err(GatewayError::config("cells", "need >= 1"));
    }
    if config.slots_per_request == 0 {
        return Err(GatewayError::config("slots_per_request", "need >= 1"));
    }
    if config.requests == 0 {
        return Err(GatewayError::config("requests", "need >= 1"));
    }
    let bodies = build_bodies(config)?;

    let workers = config
        .connections
        .min(usize::try_from(config.requests).unwrap_or(usize::MAX));
    let next_index = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let tallies: Vec<WorkerTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let bodies = &bodies;
                let next_index = Arc::clone(&next_index);
                scope.spawn(move || worker_run(config, bodies, &next_index, started))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen worker panicked"))
            .collect()
    });
    let elapsed = started.elapsed();

    let mut latencies: Vec<u64> = Vec::new();
    let mut accepted = 0;
    let mut shed = 0;
    let mut errors = 0;
    let mut slots_sent = 0;
    for tally in tallies {
        accepted += tally.accepted;
        shed += tally.shed;
        errors += tally.errors;
        slots_sent += tally.slots_sent;
        latencies.extend(tally.latencies_us);
    }
    latencies.sort_unstable();
    let quantile = |q: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * q).round() as usize;
        latencies[idx.min(latencies.len() - 1)]
    };
    let completed = latencies.len() as u64;
    let elapsed_secs = elapsed.as_secs_f64().max(1e-9);
    let admitted = accepted + shed;
    Ok(LoadgenReport {
        requests: config.requests,
        accepted,
        shed,
        errors,
        slots_sent,
        streams: config.streams,
        elapsed_secs,
        sustained_rps: completed as f64 / elapsed_secs,
        shed_fraction: if admitted == 0 {
            0.0
        } else {
            shed as f64 / admitted as f64
        },
        p50_us: quantile(0.50),
        p99_us: quantile(0.99),
        max_us: latencies.last().copied().unwrap_or(0),
    })
}

/// Pre-generates every cell's rotation of request bodies: the cell's
/// scenario demand, intensity-scaled to the configured stream count,
/// cut into `slots_per_request` windows and serialized once.
fn build_bodies(config: &LoadgenConfig) -> Result<Vec<Vec<Body>>, GatewayError> {
    let scenario_err = |e: jocal_sim::SimError| GatewayError::config("scenario", e.to_string());
    // Aggregate base intensity per slot across all cells, for scaling.
    let mut traces = Vec::with_capacity(config.cells);
    let mut base_per_slot = 0.0f64;
    for cell in 0..config.cells {
        let seed = ScenarioConfig::cell_seed(config.seed, cell);
        let scenario = config.scenario.build(seed).map_err(scenario_err)?;
        let demand = scenario.demand;
        let horizon = demand.horizon();
        let mut total = 0.0;
        for t in 0..horizon {
            for n in 0..demand.num_sbs() {
                for m in 0..demand.num_classes(jocal_sim::SbsId(n)) {
                    for k in 0..demand.num_contents() {
                        total += demand.lambda(
                            t,
                            jocal_sim::SbsId(n),
                            jocal_sim::ClassId(m),
                            jocal_sim::ContentId(k),
                        );
                    }
                }
            }
        }
        base_per_slot += total / horizon.max(1) as f64;
        traces.push(demand);
    }
    let factor = if base_per_slot > 0.0 {
        config.streams as f64 / base_per_slot
    } else {
        1.0
    };

    let mut bodies = Vec::with_capacity(config.cells);
    for mut demand in traces {
        demand.map_in_place(|v| v * factor);
        let horizon = demand.horizon();
        let batch = config.slots_per_request;
        let mut cell_bodies = Vec::new();
        let mut start = 0;
        while start < horizon {
            let len = batch.min(horizon - start);
            let window = demand.window(start, len);
            let mut bytes = Vec::new();
            write_trace(&window, &mut bytes)?;
            cell_bodies.push(Body {
                bytes: Arc::new(bytes),
                slots: len as u64,
            });
            start += len;
        }
        bodies.push(cell_bodies);
    }
    Ok(bodies)
}

fn worker_run(
    config: &LoadgenConfig,
    bodies: &[Vec<Body>],
    next_index: &AtomicU64,
    started: Instant,
) -> WorkerTally {
    let mut tally = WorkerTally::default();
    let mut client: Option<HttpClient> = None;
    loop {
        let idx = next_index.fetch_add(1, Ordering::Relaxed);
        if idx >= config.requests {
            return tally;
        }
        if let LoadgenMode::Open { rate_per_sec } = config.mode {
            if rate_per_sec > 0.0 {
                let due = Duration::from_secs_f64(idx as f64 / rate_per_sec);
                let now = started.elapsed();
                if due > now {
                    std::thread::sleep(due - now);
                }
            }
        }
        let cell = usize::try_from(idx).unwrap_or(usize::MAX) % config.cells;
        let rotation = &bodies[cell];
        let body =
            &rotation[(usize::try_from(idx / config.cells as u64).unwrap_or(0)) % rotation.len()];
        let target = format!("/v1/demand?cell={cell}");

        // (Re)connect lazily; a failed round-trip discards the
        // connection and counts one error.
        if client.is_none() {
            match HttpClient::connect(&config.target, config.timeout) {
                Ok(c) => client = Some(c),
                Err(_) => {
                    tally.errors += 1;
                    continue;
                }
            }
        }
        let sent = Instant::now();
        let result =
            client
                .as_mut()
                .expect("client connected above")
                .request("POST", &target, &body.bytes);
        match result {
            Ok(resp) => {
                let us = u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX);
                tally.latencies_us.push(us);
                match resp.status {
                    202 => {
                        tally.accepted += 1;
                        tally.slots_sent += body.slots;
                    }
                    429 => tally.shed += 1,
                    _ => tally.errors += 1,
                }
                if !resp.keep_alive {
                    client = None;
                }
            }
            Err(_) => {
                tally.errors += 1;
                client = None;
            }
        }
    }
}
