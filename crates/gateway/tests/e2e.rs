//! End-to-end gateway tests: wire-fed parity with in-process replay,
//! bounded overload behavior, the Prometheus endpoint and worker
//! robustness against hostile input.

use jocal_cluster::{Cell, ClusterConfig, ClusterEngine};
use jocal_core::primal_dual::PrimalDualOptions;
use jocal_core::{CoreError, Parallelism};
use jocal_gateway::{
    preregister_headline_metrics, CellSpec, Gateway, GatewayConfig, HttpClient, ObservabilityConfig,
};
use jocal_online::afhc::afhc_policy;
use jocal_online::chc::ChcPolicy;
use jocal_online::policy::{Action, OnlinePolicy, PolicyContext};
use jocal_online::ratio::RatioOptions;
use jocal_online::rhc::RhcPolicy;
use jocal_online::rounding::RoundingPolicy;
use jocal_serve::engine::ServeConfig;
use jocal_serve::metrics::{MemorySink, SharedMemorySink};
use jocal_serve::source::TraceSource;
use jocal_sim::predictor::NoiseModel;
use jocal_sim::scenario::ScenarioConfig;
use jocal_sim::trace::write_trace;
use jocal_telemetry::{Event, FieldValue, SloSpec, SloState, Telemetry, PROMETHEUS_CONTENT_TYPE};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

const ETA: f64 = 0.15;
const NOISE_SEED: u64 = 9001;
const WINDOW: usize = 3;
const CELLS: usize = 2;
const MASTER_SEED: u64 = 77;

fn policies() -> Vec<Box<dyn OnlinePolicy + Send>> {
    let options = PrimalDualOptions {
        parallelism: Parallelism::Threads(1),
        ..PrimalDualOptions::online()
    };
    vec![
        Box::new(RhcPolicy::new(WINDOW, options)),
        Box::new(afhc_policy(WINDOW, RoundingPolicy::default(), options)),
        Box::new(ChcPolicy::new(
            WINDOW,
            2,
            RoundingPolicy::default(),
            options,
        )),
    ]
}

fn policy_named(name: &str) -> Box<dyn OnlinePolicy + Send> {
    policies()
        .into_iter()
        .find(|p| p.name() == name)
        .expect("known policy name")
}

fn cell_serve_config(cell: usize) -> ServeConfig {
    let mut config = ServeConfig::new(WINDOW, ScenarioConfig::cell_seed(42, cell));
    config.noise = NoiseModel::new(ETA, NOISE_SEED.wrapping_add(cell as u64));
    config.ledger = true;
    config.ratio = Some(RatioOptions {
        block: 4,
        max_iterations: 20,
        ..RatioOptions::default()
    });
    config
}

/// Looks up a string-valued event field (owned or static).
fn field_text<'a>(ev: &'a Event, key: &str) -> Option<&'a str> {
    ev.fields
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            FieldValue::Text(s) => Some(s.as_str()),
            FieldValue::Str(s) => Some(*s),
            _ => None,
        })
}

/// One slot record as exact bits: `(slot, requests, sbs_served,
/// spilled, bs_served, cost_total, repair_scaled_sbs, buffered_slots)`.
type SlotBits = (usize, u64, u64, u64, u64, u64, usize, usize);

/// Summarizes a sink's full record stream as exact bits (timing fields
/// excluded — they are the only nondeterministic part of a record).
fn fingerprint(sink: &MemorySink) -> Vec<SlotBits> {
    sink.slots
        .iter()
        .map(|m| {
            (
                m.slot,
                m.requests,
                m.sbs_served.to_bits(),
                m.spilled.to_bits(),
                m.bs_served.to_bits(),
                m.cost.total().to_bits(),
                m.repair_scaled_sbs,
                m.buffered_slots,
            )
        })
        .collect()
}

/// The acceptance parity test: demand replayed through the gateway's
/// `NetworkDemandSource` produces bit-identical ServeReport/ledger/
/// ratio streams to the same trace fed via `TraceSource` in-process,
/// for RHC/AFHC/CHC at 1 and 4 shards. The gateway side runs with
/// the full observability stack on — enabled telemetry, request-id
/// attribution of every ingested slot, a 5ms background sampler and
/// live SLO evaluation — while the in-process side runs with
/// telemetry disabled: observation must never change a decision.
#[test]
fn gateway_replay_is_bit_identical_to_in_process_trace() {
    let scenarios: Vec<_> = (0..CELLS)
        .map(|i| {
            ScenarioConfig::tiny()
                .build(ScenarioConfig::cell_seed(MASTER_SEED, i))
                .unwrap()
        })
        .collect();

    for shards in [1usize, 4] {
        for policy_probe in policies() {
            let name = policy_probe.name().to_string();
            drop(policy_probe);

            // --- In-process: TraceSource-fed cluster ----------------
            let in_process_sinks: Vec<SharedMemorySink> =
                (0..CELLS).map(|_| SharedMemorySink::new()).collect();
            let cells: Vec<Cell> = scenarios
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    Cell::new(
                        s.network.clone(),
                        jocal_core::CostModel::paper(),
                        cell_serve_config(i),
                        Box::new(TraceSource::new(s.demand.clone())),
                        policy_named(&name),
                    )
                    .with_sink(Box::new(in_process_sinks[i].clone()))
                })
                .collect();
            ClusterEngine::new(ClusterConfig::new(shards))
                .run(cells)
                .unwrap_or_else(|e| panic!("in-process {name} x{shards} failed: {e}"));

            // --- Gateway: the same demand over the wire -------------
            let gateway_sinks: Vec<SharedMemorySink> =
                (0..CELLS).map(|_| SharedMemorySink::new()).collect();
            let specs: Vec<CellSpec> = scenarios
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    CellSpec::new(
                        s.network.clone(),
                        jocal_core::CostModel::paper(),
                        cell_serve_config(i),
                        policy_named(&name),
                    )
                    .with_sink(Box::new(gateway_sinks[i].clone()))
                    .with_expected_slots(s.demand.horizon())
                })
                .collect();
            let config = GatewayConfig {
                queue_capacity: 64,
                http_workers: 2,
                observability: ObservabilityConfig {
                    windows: vec![Duration::from_millis(50), Duration::from_millis(500)],
                    sample_interval: Some(Duration::from_millis(5)),
                    slos: vec![
                        SloSpec::share_below(
                            "shed_fraction",
                            "gateway_rejected_overload",
                            "gateway_requests",
                            0.9,
                        ),
                        SloSpec::p99_below("request_p99_us", "gateway_request_us", 60_000_000.0),
                        SloSpec::gauge_below("empirical_ratio", "serve_empirical_ratio", 1e9),
                    ],
                    fast_window: Duration::from_millis(50),
                    slow_window: Duration::from_millis(500),
                },
                ..GatewayConfig::default()
            };
            let telemetry = Telemetry::enabled();
            let gateway =
                Gateway::start(&config, ClusterConfig::new(shards), specs, &telemetry).unwrap();
            let addr = gateway.local_addr().to_string();

            let mut client = HttpClient::connect(&addr, Duration::from_secs(10)).unwrap();
            let horizon = scenarios[0].demand.horizon();
            let batch = 4;
            let mut start = 0;
            while start < horizon {
                let len = batch.min(horizon - start);
                for (i, s) in scenarios.iter().enumerate() {
                    let mut body = Vec::new();
                    write_trace(&s.demand.window(start, len), &mut body).unwrap();
                    let resp = client
                        .request("POST", &format!("/v1/demand?cell={i}"), &body)
                        .unwrap();
                    assert_eq!(resp.status, 202, "{name} x{shards} cell {i} slot {start}");
                }
                start += len;
            }
            drop(client);
            let (report, stats) = gateway.join().unwrap();
            assert_eq!(report.cells.len(), CELLS);
            assert_eq!(stats.worker_panics, 0);

            // Attribution: every slot that entered a cell carries the
            // generated request id of the HTTP request that delivered
            // it, and nothing was dropped from the event buffer.
            assert_eq!(telemetry.events_dropped(), 0);
            let events = telemetry.take_events();
            let ingests: Vec<_> = events.iter().filter(|e| e.name == "slot_ingest").collect();
            assert_eq!(
                ingests.len(),
                CELLS * horizon,
                "{name} x{shards}: every ingested slot must be attributed"
            );
            for ev in &ingests {
                let rid = field_text(ev, "request_id").expect("slot_ingest carries request_id");
                assert!(rid.starts_with("jocal-"), "generated id shape: {rid}");
            }

            // --- Bit-exact comparison -------------------------------
            for i in 0..CELLS {
                let a = in_process_sinks[i].snapshot();
                let b = gateway_sinks[i].snapshot();
                let ctx = format!("{name} x{shards} cell {i}");
                assert_eq!(a.header, b.header, "{ctx}: headers differ");
                assert_eq!(fingerprint(&a), fingerprint(&b), "{ctx}: slots differ");
                assert_eq!(a.ledgers, b.ledgers, "{ctx}: ledger streams differ");
                assert_eq!(a.ratios, b.ratios, "{ctx}: ratio streams differ");
                let (sa, sb) = (a.summary.unwrap(), b.summary.unwrap());
                assert_eq!(sa.slots, sb.slots, "{ctx}");
                assert_eq!(sa.requests, sb.requests, "{ctx}");
                assert_eq!(
                    sa.cost.total().to_bits(),
                    sb.cost.total().to_bits(),
                    "{ctx}: summary cost differs"
                );
                assert_eq!(
                    sa.hit_ratio.to_bits(),
                    sb.hit_ratio.to_bits(),
                    "{ctx}: summary hit ratio differs"
                );
            }
        }
    }
}

/// A free policy for tests that exercise the HTTP plane, not the
/// solver.
#[derive(Debug)]
struct Idle;

impl OnlinePolicy for Idle {
    fn name(&self) -> &str {
        "idle"
    }

    fn decide(&mut self, _t: usize, ctx: &PolicyContext<'_>) -> Result<Action, CoreError> {
        Ok(Action::idle(ctx.network))
    }

    fn reset(&mut self) {}
}

fn idle_cell(expected_slots: usize, window: usize) -> CellSpec {
    let scenario = ScenarioConfig::tiny().build(5).unwrap();
    let mut config = ServeConfig::new(window, 1);
    config.noise = NoiseModel::new(0.0, 0);
    CellSpec::new(
        scenario.network,
        jocal_core::CostModel::paper(),
        config,
        Box::new(Idle),
    )
    .with_expected_slots(expected_slots)
}

fn demand_body(slots: usize) -> Vec<u8> {
    let scenario = ScenarioConfig::tiny()
        .with_horizon(slots.max(1))
        .build(5)
        .unwrap();
    let mut body = Vec::new();
    write_trace(&scenario.demand.window(0, slots.max(1)), &mut body).unwrap();
    body
}

fn wait_serve_finished(gateway: &Gateway) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !gateway.serve_finished() {
        assert!(Instant::now() < deadline, "serve thread did not finish");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The acceptance overload test: with a queue watermark of Q, a burst
/// of 4Q one-slot requests yields bounded queue depth (exactly Q),
/// at least one 429, zero worker panics and a clean drain;
/// `gateway_rejected_overload` matches the count of 429s.
#[test]
fn overload_burst_is_bounded_shed_and_drains_cleanly() {
    const Q: usize = 4;
    let telemetry = Telemetry::enabled();
    let config = GatewayConfig {
        queue_capacity: Q,
        http_workers: 2,
        ..GatewayConfig::default()
    };
    // The cell consumes exactly 2 slots, then the ring only fills.
    let gateway = Gateway::start(
        &config,
        ClusterConfig::new(1),
        vec![idle_cell(2, 1)],
        &telemetry,
    )
    .unwrap();
    let addr = gateway.local_addr().to_string();
    let mut client = HttpClient::connect(&addr, Duration::from_secs(10)).unwrap();

    // Feed the cell its 2 expected slots and let serving complete, so
    // the burst below meets a ring nothing drains.
    let resp = client
        .request("POST", "/v1/demand", &demand_body(2))
        .unwrap();
    assert_eq!(resp.status, 202);
    wait_serve_finished(&gateway);

    // Burst: 4Q one-slot batches. Exactly Q fit; the rest are shed.
    let one_slot = demand_body(1);
    let mut accepted = 0u64;
    let mut shed = 0u64;
    for _ in 0..4 * Q {
        let resp = client.request("POST", "/v1/demand", &one_slot).unwrap();
        match resp.status {
            202 => accepted += 1,
            429 => {
                shed += 1;
                // Retry-After is derived from the observed ring drain
                // rate; with a dead consumer it saturates at the clamp
                // ceiling, but any value inside the clamp is valid.
                let retry: u64 = resp
                    .header("retry-after")
                    .expect("429 must carry Retry-After")
                    .parse()
                    .expect("Retry-After must be integral seconds");
                assert!(
                    (1..=30).contains(&retry),
                    "Retry-After {retry} outside clamp"
                );
            }
            other => panic!("unexpected status {other}"),
        }
    }
    assert_eq!(
        accepted, Q as u64,
        "exactly Q batches fit under the watermark"
    );
    assert_eq!(
        shed,
        3 * Q as u64,
        "everything beyond the watermark is shed"
    );

    // Clean drain: stop accepting, close the rings, reap everything.
    let resp = client.request("POST", "/v1/shutdown", b"").unwrap();
    assert_eq!(resp.status, 200);
    drop(client);
    let (report, stats) = gateway.join().unwrap();

    assert_eq!(report.cells[0].report.summary.slots, 2);
    assert_eq!(stats.queue_depth_highwater, Q, "depth is exactly bounded");
    assert_eq!(stats.worker_panics, 0);
    assert_eq!(stats.rejected_overload, shed);
    assert_eq!(
        telemetry.counter("gateway_rejected_overload").get(),
        shed,
        "telemetry counter must match the observed 429s"
    );
}

fn metric_names(body: &str) -> Vec<String> {
    let mut names = Vec::new();
    for line in body.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let name: String = line
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if names.last() != Some(&name) {
            names.push(name);
        }
    }
    names
}

/// Satellite: the Prometheus exporter served over HTTP — content type,
/// stable metric ordering, and headline names present after a 0-slot
/// and a 100-slot run.
#[test]
fn metrics_endpoint_content_type_ordering_and_headline_names() {
    let headline = [
        "pd_iterations",
        "pd_iterations_total",
        "pd_dual_residual_norm_1e6",
        "window_solve_us",
        "chc_rounding_flips_total",
        "repair_scale_passes_total",
        "repair_scale_pct",
    ];
    let gateway_names = [
        "gateway_requests",
        "gateway_rejected_overload",
        "gateway_queue_depth",
        "gateway_request_us",
    ];

    let scrape = |slots: usize| -> (String, String, String) {
        let telemetry = Telemetry::enabled();
        preregister_headline_metrics(&telemetry);
        let config = GatewayConfig {
            http_workers: 1,
            ..GatewayConfig::default()
        };
        let gateway = Gateway::start(
            &config,
            ClusterConfig::new(1),
            vec![idle_cell(slots, 1)],
            &telemetry,
        )
        .unwrap();
        let addr = gateway.local_addr().to_string();
        let mut client = HttpClient::connect(&addr, Duration::from_secs(10)).unwrap();
        let mut sent = 0;
        while sent < slots {
            let batch = 25.min(slots - sent);
            let resp = client
                .request("POST", "/v1/demand", &demand_body(batch))
                .unwrap();
            assert_eq!(resp.status, 202);
            sent += batch;
        }
        wait_serve_finished(&gateway);
        let first = client.request("GET", "/metrics", b"").unwrap();
        assert_eq!(first.status, 200);
        assert_eq!(
            first.header("content-type"),
            Some(PROMETHEUS_CONTENT_TYPE),
            "exporter content type must match the text exposition version"
        );
        let second = client.request("GET", "/metrics", b"").unwrap();
        assert_eq!(second.status, 200);
        drop(client);
        gateway.drain();
        gateway.join().unwrap();
        (
            String::from_utf8(first.body).unwrap(),
            String::from_utf8(second.body).unwrap(),
            addr,
        )
    };

    for slots in [0usize, 100] {
        let (first, second, _addr) = scrape(slots);
        // Stable ordering: two scrapes expose the same names in the
        // same registration order (values may differ).
        assert_eq!(
            metric_names(&first),
            metric_names(&second),
            "{slots}-slot run: metric ordering must be stable across scrapes"
        );
        for name in headline.iter().chain(&gateway_names) {
            assert!(
                first.contains(name),
                "{slots}-slot run: missing headline metric {name}"
            );
        }
    }
}

/// Satellite robustness: malformed requests are rejected without
/// killing the worker — the same connection slot keeps serving.
#[test]
fn malformed_requests_do_not_kill_workers() {
    let telemetry = Telemetry::enabled();
    let config = GatewayConfig {
        http_workers: 1, // one worker: if it dies, the next probe hangs
        read_timeout: Duration::from_secs(2),
        max_body_bytes: 1 << 16,
        ..GatewayConfig::default()
    };
    let gateway = Gateway::start(
        &config,
        ClusterConfig::new(1),
        vec![idle_cell(1, 1)],
        &telemetry,
    )
    .unwrap();
    let addr = gateway.local_addr().to_string();

    // Raw protocol garbage.
    {
        let mut raw = TcpStream::connect(&addr).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        raw.write_all(b"NOT-HTTP\r\n\r\n").unwrap();
        let mut buf = Vec::new();
        let _ = raw.read_to_end(&mut buf);
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 400"), "got: {text}");
    }

    let mut client = HttpClient::connect(&addr, Duration::from_secs(5)).unwrap();
    // Garbage demand body → 400, connection still usable.
    let resp = client
        .request("POST", "/v1/demand", b"not a trace")
        .unwrap();
    assert_eq!(resp.status, 400);
    // Non-finite lambda in an otherwise well-formed body → 400.
    let evil =
        b"# jocal-demand-trace v1\n# horizon=1 contents=1 classes_per_sbs=1\nt,sbs,class,content,lambda\n0,0,0,0,NaN\n";
    let resp = client.request("POST", "/v1/demand", evil).unwrap();
    assert_eq!(resp.status, 400);
    // Unknown cell → 404; bad method → 405; unknown path → 404.
    let resp = client
        .request("POST", "/v1/demand?cell=9", &demand_body(1))
        .unwrap();
    assert_eq!(resp.status, 404);
    let resp = client.request("DELETE", "/metrics", b"").unwrap();
    assert_eq!(resp.status, 405);
    let resp = client.request("GET", "/nope", b"").unwrap();
    assert_eq!(resp.status, 404);
    // Oversized body → 413 (connection closes, reconnect).
    let big = vec![b'x'; (1 << 16) + 1];
    let resp = client.request("POST", "/v1/demand", &big).unwrap();
    assert_eq!(resp.status, 413);
    let mut client = HttpClient::connect(&addr, Duration::from_secs(5)).unwrap();

    // The single worker is alive and well.
    let resp = client.request("GET", "/healthz", b"").unwrap();
    assert_eq!(resp.status, 200);
    let resp = client.request("GET", "/readyz", b"").unwrap();
    assert_eq!(resp.status, 200);

    drop(client);
    gateway.drain();
    let (_, stats) = gateway.join().unwrap();
    assert_eq!(stats.worker_panics, 0);
    assert!(stats.malformed >= 3);
}

/// Loadgen round trip against a live gateway: the report accounts for
/// every request and latency percentiles are populated.
#[test]
fn loadgen_drives_a_gateway_end_to_end() {
    use jocal_gateway::{run_loadgen, LoadgenConfig, LoadgenMode};

    let telemetry = Telemetry::enabled();
    let config = GatewayConfig {
        queue_capacity: 512,
        http_workers: 2,
        ..GatewayConfig::default()
    };
    // Large expected_slots: the run ends by drain, not by horizon.
    let scenario_cfg = ScenarioConfig::tiny();
    let scenario = scenario_cfg
        .build(ScenarioConfig::cell_seed(42, 0))
        .unwrap();
    let mut serve_cfg = ServeConfig::new(1, 1);
    serve_cfg.noise = NoiseModel::new(0.0, 0);
    let spec = CellSpec::new(
        scenario.network,
        jocal_core::CostModel::paper(),
        serve_cfg,
        Box::new(Idle),
    )
    .with_expected_slots(1_000_000);
    let gateway = Gateway::start(&config, ClusterConfig::new(1), vec![spec], &telemetry).unwrap();
    let addr = gateway.local_addr().to_string();

    let report = run_loadgen(&LoadgenConfig {
        requests: 200,
        connections: 2,
        streams: 10_000,
        cells: 1,
        slots_per_request: 2,
        mode: LoadgenMode::Closed,
        scenario: scenario_cfg,
        seed: 42,
        ..LoadgenConfig::new(addr)
    })
    .unwrap();

    assert_eq!(report.requests, 200);
    assert_eq!(report.accepted + report.shed + report.errors, 200);
    assert!(report.accepted > 0, "some batches must land: {report:?}");
    assert!(report.sustained_rps > 0.0);
    assert!(report.p50_us <= report.p99_us && report.p99_us <= report.max_us);
    assert!(report.slots_sent >= report.accepted);

    gateway.drain();
    let (_, stats) = gateway.join().unwrap();
    assert_eq!(stats.worker_panics, 0);
    assert!(stats.requests >= 200);
}

/// The acceptance SLO test, on a virtual clock: with the background
/// sampler off and `observe_at` driven manually, an induced overload
/// burst walks the shed-fraction SLO Ok → Warn → Breach (flipping
/// `/readyz` to 503) and a healthy tail walks it back to Ok — fully
/// deterministically. Along the way: every response echoes
/// `X-Request-Id` (inbound or generated), the shed event is attributed
/// to the request id that was shed, and `Retry-After` is inside the
/// clamp.
#[test]
fn slo_watchdog_walks_warn_breach_recover_on_a_virtual_clock() {
    const Q: usize = 4;
    let telemetry = Telemetry::enabled();
    let config = GatewayConfig {
        queue_capacity: Q,
        http_workers: 1,
        observability: ObservabilityConfig {
            windows: vec![Duration::from_secs(1), Duration::from_secs(4)],
            sample_interval: None, // manual observe_at only
            slos: vec![SloSpec::share_below(
                "shed_fraction",
                "gateway_rejected_overload",
                "gateway_requests",
                0.5,
            )],
            fast_window: Duration::from_secs(1),
            slow_window: Duration::from_secs(4),
        },
        ..GatewayConfig::default()
    };
    // The cell consumes exactly 2 slots, then the ring only fills.
    let gateway = Gateway::start(
        &config,
        ClusterConfig::new(1),
        vec![idle_cell(2, 1)],
        &telemetry,
    )
    .unwrap();
    let handle = gateway.handle();
    let addr = gateway.local_addr().to_string();
    let mut client = HttpClient::connect(&addr, Duration::from_secs(10)).unwrap();

    // Feed the cell its 2 expected slots; the response to a request
    // without an inbound id carries a generated, echoed X-Request-Id.
    let resp = client
        .request("POST", "/v1/demand", &demand_body(2))
        .unwrap();
    assert_eq!(resp.status, 202);
    let generated = resp.header("x-request-id").expect("id echoed").to_string();
    assert!(generated.starts_with("jocal-"), "generated id: {generated}");
    wait_serve_finished(&gateway);

    // Fill the ring to its watermark so every further POST sheds.
    let one_slot = demand_body(1);
    for _ in 0..Q {
        let resp = client.request("POST", "/v1/demand", &one_slot).unwrap();
        assert_eq!(resp.status, 202);
    }

    let readyz = |client: &mut HttpClient| {
        let resp = client.request("GET", "/readyz", b"").unwrap();
        (resp.status, String::from_utf8(resp.body).unwrap())
    };

    // t=1s: baseline sample. One sample -> windows unformable -> Ok.
    handle.observe_at(1_000_000);

    // Healthy phase: 30 requests, zero shed.
    for _ in 0..30 {
        let resp = client.request("GET", "/healthz", b"").unwrap();
        assert_eq!(resp.status, 200);
    }
    // t=2s: both windows clean.
    handle.observe_at(2_000_000);
    assert!(!handle.slo_breached());
    assert_eq!(handle.slo_statuses()[0].state, SloState::Ok);
    assert_eq!(readyz(&mut client), (200, "ready\n".to_string()));

    // Overload, round one: 10 sheds. The first is explicitly tagged so
    // the shed event can be pinned to it.
    let resp = client
        .request_with_headers(
            "POST",
            "/v1/demand",
            &one_slot,
            &[("x-request-id", "test-breach-probe")],
        )
        .unwrap();
    assert_eq!(resp.status, 429);
    assert_eq!(resp.header("x-request-id"), Some("test-breach-probe"));
    let retry: u64 = resp.header("retry-after").unwrap().parse().unwrap();
    assert!(
        (1..=30).contains(&retry),
        "Retry-After {retry} outside clamp"
    );
    for _ in 0..9 {
        let resp = client.request("POST", "/v1/demand", &one_slot).unwrap();
        assert_eq!(resp.status, 429);
    }
    // t=3s: fast window ~91% shed (burn >= 1), slow window still
    // diluted by the healthy phase (~24%, burn < 1) -> Warn, still
    // ready.
    handle.observe_at(3_000_000);
    assert_eq!(handle.slo_statuses()[0].state, SloState::Warn);
    assert!(!handle.slo_breached());
    assert_eq!(readyz(&mut client), (200, "ready\n".to_string()));

    // Overload, round two: 40 more sheds push the slow window over.
    for _ in 0..40 {
        let resp = client.request("POST", "/v1/demand", &one_slot).unwrap();
        assert_eq!(resp.status, 429);
    }
    // t=4s: both windows burn >= 1 -> Breach; /readyz flips to 503.
    handle.observe_at(4_000_000);
    assert_eq!(handle.slo_statuses()[0].state, SloState::Breach);
    assert!(handle.slo_breached());
    assert_eq!(
        readyz(&mut client),
        (503, "slo breach\n".to_string()),
        "a breached SLO must flip readiness"
    );
    let resp = client.request("GET", "/debug/vars", b"").unwrap();
    assert_eq!(resp.status, 200);
    let vars = String::from_utf8(resp.body).unwrap();
    assert!(vars.contains("\"ready\":false"), "vars: {vars}");
    assert!(vars.contains("\"state\":\"breach\""), "vars: {vars}");

    // Recovery: a healthy tail dilutes both windows back under target.
    for _ in 0..150 {
        let resp = client.request("GET", "/healthz", b"").unwrap();
        assert_eq!(resp.status, 200);
    }
    // t=5s: fast window clean, slow window back to ~21% -> Ok again.
    handle.observe_at(5_000_000);
    assert_eq!(handle.slo_statuses()[0].state, SloState::Ok);
    assert!(!handle.slo_breached());
    assert_eq!(readyz(&mut client), (200, "ready\n".to_string()));

    drop(client);
    gateway.drain();
    gateway.join().unwrap();

    // Structured record of the whole walk: the shed event is
    // attributed to the tagged request, and the watchdog logged every
    // transition.
    let events = telemetry.take_events();
    assert!(
        events.iter().any(|e| e.name == "gateway_shed"
            && field_text(e, "request_id") == Some("test-breach-probe")),
        "shed event must carry the id of the request that was shed"
    );
    let walk: Vec<(&str, &str)> = events
        .iter()
        .filter(|e| e.name == "slo_breach")
        .map(|e| {
            (
                field_text(e, "from").unwrap_or(""),
                field_text(e, "to").unwrap_or(""),
            )
        })
        .collect();
    assert_eq!(
        walk,
        vec![("ok", "warn"), ("warn", "breach"), ("breach", "ok")],
        "the watchdog must log exactly the Ok -> Warn -> Breach -> Ok walk"
    );
}

/// Value of an unlabeled metric in a Prometheus text body.
fn metric_value(body: &str, name: &str) -> f64 {
    body.lines()
        .find_map(|l| l.strip_prefix(name).and_then(|rest| rest.strip_prefix(' ')))
        .unwrap_or_else(|| panic!("metric {name} missing"))
        .trim()
        .parse()
        .unwrap()
}

/// Satellite: scraping `/metrics` concurrently with a graceful drain
/// keeps returning complete, consistently ordered expositions, and
/// successive scrapes on one connection observe monotone counters.
/// The first post-drain response closes the connection (drain stops
/// keep-alive), which also bounds the scraper.
#[test]
fn metrics_scrape_stays_consistent_during_graceful_drain() {
    let telemetry = Telemetry::enabled();
    preregister_headline_metrics(&telemetry);
    let config = GatewayConfig {
        http_workers: 2,
        ..GatewayConfig::default()
    };
    let gateway = Gateway::start(
        &config,
        ClusterConfig::new(1),
        vec![idle_cell(4, 1)],
        &telemetry,
    )
    .unwrap();
    let addr = gateway.local_addr().to_string();

    let mut feeder = HttpClient::connect(&addr, Duration::from_secs(10)).unwrap();
    let resp = feeder
        .request("POST", "/v1/demand", &demand_body(4))
        .unwrap();
    assert_eq!(resp.status, 202);
    wait_serve_finished(&gateway);

    let scraper_addr = addr.clone();
    let scraper = std::thread::spawn(move || {
        let mut client = HttpClient::connect(&scraper_addr, Duration::from_secs(10)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut bodies = Vec::new();
        while Instant::now() < deadline {
            let Ok(resp) = client.request("GET", "/metrics", b"") else {
                break;
            };
            assert_eq!(resp.status, 200);
            let keep = resp.keep_alive;
            bodies.push(String::from_utf8(resp.body).unwrap());
            if !keep {
                break; // drain observed: the gateway closed us out
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        bodies
    });

    // Let a few pre-drain scrapes land, then drain underneath them.
    std::thread::sleep(Duration::from_millis(20));
    gateway.drain();
    let bodies = scraper.join().unwrap();
    let (_, stats) = gateway.join().unwrap();
    assert_eq!(stats.worker_panics, 0);

    assert!(
        bodies.len() >= 2,
        "need scrapes on both sides of the drain, got {}",
        bodies.len()
    );
    // Every scrape is a complete exposition with identical ordering.
    let names = metric_names(&bodies[0]);
    assert!(names.iter().any(|n| n == "gateway_requests"));
    for body in &bodies {
        assert_eq!(metric_names(body), names, "ordering must survive the drain");
    }
    // Each scrape counts itself before snapshotting, so successive
    // same-connection scrapes observe strictly increasing requests.
    let requests: Vec<f64> = bodies
        .iter()
        .map(|b| metric_value(b, "gateway_requests"))
        .collect();
    for pair in requests.windows(2) {
        assert!(
            pair[1] > pair[0],
            "scrapes must observe monotone counters: {requests:?}"
        );
    }
}

/// The acceptance incident-capture test: a gateway with per-cell
/// flight recorders and debug endpoints on. A deterministic SLO
/// breach (virtual-clock watchdog walk) and an injected worker panic
/// must each land a trigger record in the on-disk capture; ingested
/// slots must carry the request ids that delivered them; and the
/// capture must load back readable with its frames intact.
#[test]
fn triggered_dumps_record_slo_breach_and_worker_panic() {
    use jocal_flightrec::{Capture, CaptureHeader, FlightRecorder};

    const Q: usize = 4;
    let dir = std::env::temp_dir().join(format!("jocal-gw-flightrec-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let telemetry = Telemetry::enabled();
    let mut header = CaptureHeader::new("Idle", "idle");
    header.capacity = 64;
    let recorder = FlightRecorder::to_dir(&dir, header, 64, &telemetry).unwrap();

    let config = GatewayConfig {
        queue_capacity: Q,
        http_workers: 2,
        debug_endpoints: true,
        observability: ObservabilityConfig {
            windows: vec![Duration::from_secs(1), Duration::from_secs(4)],
            sample_interval: None, // manual observe_at only
            slos: vec![SloSpec::share_below(
                "shed_fraction",
                "gateway_rejected_overload",
                "gateway_requests",
                0.5,
            )],
            fast_window: Duration::from_secs(1),
            slow_window: Duration::from_secs(4),
        },
        ..GatewayConfig::default()
    };
    let gateway = Gateway::start(
        &config,
        ClusterConfig::new(1),
        vec![idle_cell(2, 1).with_recorder(recorder.clone())],
        &telemetry,
    )
    .unwrap();
    let handle = gateway.handle();
    let addr = gateway.local_addr().to_string();
    let mut client = HttpClient::connect(&addr, Duration::from_secs(10)).unwrap();

    // Feed the cell its 2 expected slots under a known request id, so
    // the ingested slots are tagged with it in the capture.
    let resp = client
        .request_with_headers(
            "POST",
            "/v1/demand",
            &demand_body(2),
            &[("x-request-id", "incident-probe-1")],
        )
        .unwrap();
    assert_eq!(resp.status, 202);
    wait_serve_finished(&gateway);

    // Deterministic breach: fill the ring, then an all-shed phase
    // pushes both burn windows over target.
    let one_slot = demand_body(1);
    for _ in 0..Q {
        assert_eq!(
            client
                .request("POST", "/v1/demand", &one_slot)
                .unwrap()
                .status,
            202
        );
    }
    handle.observe_at(1_000_000);
    for _ in 0..30 {
        assert_eq!(
            client
                .request("POST", "/v1/demand", &one_slot)
                .unwrap()
                .status,
            429
        );
    }
    handle.observe_at(2_000_000);
    for _ in 0..30 {
        assert_eq!(
            client
                .request("POST", "/v1/demand", &one_slot)
                .unwrap()
                .status,
            429
        );
    }
    handle.observe_at(3_000_000);
    assert!(handle.slo_breached(), "the walk must end in Breach");

    // Injected worker panic: the worker dies mid-connection (the
    // request errors out or returns nothing), the panic is isolated,
    // and the trigger lands in the capture.
    let mut panic_client = HttpClient::connect(&addr, Duration::from_secs(2)).unwrap();
    let _ = panic_client.request("POST", "/debug/panic", b"");
    drop(panic_client);

    drop(client);
    gateway.drain();
    let (_, stats) = gateway.join().unwrap();
    assert_eq!(stats.worker_panics, 1, "exactly the injected panic");

    // The capture on disk tells the whole story.
    let capture = Capture::load(&dir).unwrap();
    assert_eq!(capture.frames.len(), 2, "both served slots captured");
    assert!(
        capture
            .frames
            .iter()
            .all(|f| f.tag.as_deref() == Some("incident-probe-1")),
        "ingested slots must carry the delivering request id: {:?}",
        capture
            .frames
            .iter()
            .map(|f| f.tag.clone())
            .collect::<Vec<_>>()
    );
    let kinds: Vec<&str> = capture.triggers.iter().map(|t| t.kind.as_str()).collect();
    assert!(kinds.contains(&"slo_breach"), "triggers: {kinds:?}");
    assert!(kinds.contains(&"worker_panic"), "triggers: {kinds:?}");
    let breach = capture
        .triggers
        .iter()
        .find(|t| t.kind == "slo_breach")
        .unwrap();
    assert!(
        breach.detail.contains("shed_fraction"),
        "breach trigger names the violated objective: {}",
        breach.detail
    );
    std::fs::remove_dir_all(&dir).ok();
}
