//! The engine's `O(w)` view of the demand stream.
//!
//! [`SlidingWindow`] buffers at most `w` upcoming slots (horizon-1
//! traces recycled through a free list, so the steady state allocates
//! nothing), and [`WindowPredictor`] exposes that buffer to the online
//! policies through [`PredictionWindow`]: it assembles the requested
//! window by `memcpy` from the buffered slots and perturbs it with the
//! exact [`NoiseModel`] the batch [`jocal_sim::predictor::NoisyPredictor`]
//! uses, so a policy driven from the stream sees bit-identical
//! predictions to one driven from the buffered full-horizon truth.

use crate::error::ServeError;
use crate::source::DemandSource;
use jocal_sim::demand::DemandTrace;
use jocal_sim::predictor::{NoiseModel, PredictionWindow};
use jocal_sim::topology::Network;
use std::collections::VecDeque;
use std::fmt;

/// A bounded buffer of upcoming demand slots.
#[derive(Debug)]
pub struct SlidingWindow {
    /// Buffered slots; `slots[0]` is absolute slot `start`.
    slots: VecDeque<DemandTrace>,
    /// Recycled slot allocations.
    free: Vec<DemandTrace>,
    /// Absolute slot index of the front of the buffer.
    start: usize,
    /// High-water mark of buffered slots (the engine's memory bound).
    peak: usize,
    exhausted: bool,
    template: DemandTrace,
}

impl SlidingWindow {
    /// Creates an empty window shaped for `network`.
    #[must_use]
    pub fn new(network: &Network) -> Self {
        SlidingWindow {
            slots: VecDeque::new(),
            free: Vec::new(),
            start: 0,
            peak: 0,
            exhausted: false,
            template: DemandTrace::zeros(network, 1),
        }
    }

    /// Pulls from `source` until `target` slots are buffered or the
    /// source is exhausted.
    ///
    /// # Errors
    ///
    /// Propagates source failures.
    pub fn fill(&mut self, target: usize, source: &mut dyn DemandSource) -> Result<(), ServeError> {
        while self.slots.len() < target && !self.exhausted {
            let mut buf = self.free.pop().unwrap_or_else(|| self.template.clone());
            if source.next_slot(&mut buf)? {
                self.slots.push_back(buf);
                self.peak = self.peak.max(self.slots.len());
            } else {
                self.exhausted = true;
                self.free.push(buf);
            }
        }
        Ok(())
    }

    /// The current slot's ground truth, if any remains.
    #[must_use]
    pub fn front(&self) -> Option<&DemandTrace> {
        self.slots.front()
    }

    /// Absolute index of the current slot.
    #[must_use]
    pub fn start(&self) -> usize {
        self.start
    }

    /// Number of slots currently buffered.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.slots.len()
    }

    /// High-water mark of buffered slots over the window's lifetime.
    #[must_use]
    pub fn peak_buffered(&self) -> usize {
        self.peak
    }

    /// Whether the source has reported end of stream.
    #[must_use]
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// Drops the front slot (its allocation is recycled) and advances
    /// the window by one absolute slot.
    pub fn advance(&mut self) {
        if let Some(slot) = self.slots.pop_front() {
            self.free.push(slot);
        }
        self.start += 1;
    }

    /// The buffered slot for absolute index `t`, if buffered.
    #[must_use]
    fn get_abs(&self, t: usize) -> Option<&DemandTrace> {
        t.checked_sub(self.start).and_then(|i| self.slots.get(i))
    }

    /// A [`PredictionWindow`] view over the buffer.
    #[must_use]
    pub fn predictor(&self, noise: NoiseModel) -> WindowPredictor<'_> {
        WindowPredictor {
            window: self,
            noise,
        }
    }
}

/// Prediction oracle backed by a [`SlidingWindow`] instead of a
/// full-horizon truth tensor.
pub struct WindowPredictor<'a> {
    window: &'a SlidingWindow,
    noise: NoiseModel,
}

impl fmt::Debug for WindowPredictor<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WindowPredictor")
            .field("start", &self.window.start)
            .field("buffered", &self.window.slots.len())
            .finish()
    }
}

impl PredictionWindow for WindowPredictor<'_> {
    fn predict(&self, now: usize, horizon: usize) -> DemandTrace {
        let mut out = self.window.template.window(0, horizon);
        for local in 0..horizon {
            if let Some(slot) = self.window.get_abs(now + local) {
                out.copy_slot_from(local, slot, 0)
                    .expect("buffered slots share the engine's shape");
            }
            // Slots outside the buffer stay zero, matching the batch
            // predictors' treatment of slots past the horizon. Policies
            // driven by the engine never ask past `start + buffered`.
        }
        self.noise.apply(&mut out, now);
        out
    }

    fn stable_predictions(&self) -> bool {
        // Buffered slots hold ground truth keyed by absolute slot and
        // never change once buffered, and a drained source stays
        // drained (so a slot cannot flip from unbuffered-zero to
        // buffered-truth inside a reused overlap). With zero noise the
        // view is therefore re-request stable; nonzero noise is keyed
        // by decision time, same as the batch predictors.
        self.noise.eta() == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::TraceSource;
    use jocal_sim::predictor::NoisyPredictor;
    use jocal_sim::scenario::ScenarioConfig;

    #[test]
    fn window_view_matches_noisy_predictor_bitwise() {
        let s = ScenarioConfig::tiny().build(51).unwrap();
        let w = 3;
        let batch = NoisyPredictor::new(s.demand.clone(), 0.2, 77);
        let mut source = TraceSource::new(s.demand.clone());
        let mut window = SlidingWindow::new(&s.network);
        let noise = NoiseModel::new(0.2, 77);
        for now in 0..s.demand.horizon() {
            window.fill(w, &mut source).unwrap();
            let len = w.min(s.demand.horizon() - now).max(1);
            let streamed = window.predictor(noise).predict(now, len);
            let buffered = jocal_sim::predictor::PredictionWindow::predict(&batch, now, len);
            assert_eq!(streamed, buffered, "window at now={now} differs");
            window.advance();
        }
        assert!(window.peak_buffered() <= w);
    }

    #[test]
    fn a_one_slot_window_streams_slot_by_slot() {
        let s = ScenarioConfig::tiny().build(53).unwrap();
        let horizon = s.demand.horizon();
        let batch = NoisyPredictor::new(s.demand.clone(), 0.1, 5);
        let mut source = TraceSource::new(s.demand.clone());
        let mut window = SlidingWindow::new(&s.network);
        let noise = NoiseModel::new(0.1, 5);
        for now in 0..horizon {
            window.fill(1, &mut source).unwrap();
            assert_eq!(window.buffered(), 1, "w=1 buffers exactly one slot");
            assert_eq!(window.start(), now);
            let streamed = window.predictor(noise).predict(now, 1);
            let buffered = jocal_sim::predictor::PredictionWindow::predict(&batch, now, 1);
            assert_eq!(streamed, buffered, "w=1 window at now={now} differs");
            window.advance();
        }
        window.fill(1, &mut source).unwrap();
        assert!(window.exhausted());
        assert!(window.front().is_none());
        assert_eq!(window.peak_buffered(), 1, "w=1 never buffers ahead");
    }

    #[test]
    fn exhaustion_mid_window_serves_the_tail_and_zero_pads() {
        let s = ScenarioConfig::tiny().with_horizon(4).build(54).unwrap();
        let batch = NoisyPredictor::new(s.demand.clone(), 0.3, 11);
        let mut source = TraceSource::new(s.demand.clone());
        let mut window = SlidingWindow::new(&s.network);
        let noise = NoiseModel::new(0.3, 11);
        window.fill(3, &mut source).unwrap();
        assert!(!window.exhausted(), "3 of 4 slots buffered");
        window.advance();
        // This refill pulls the last slot and stops at target — the
        // end of stream is only discovered by the next refill's probe.
        window.fill(3, &mut source).unwrap();
        assert!(!window.exhausted(), "fill never probes past its target");
        assert_eq!(window.buffered(), 3);
        window.advance();
        window.fill(3, &mut source).unwrap();
        assert!(window.exhausted());
        assert_eq!(window.buffered(), 2, "the tail keeps serving after EOF");
        // A window reaching past the stream zero-pads the tail exactly
        // like the batch predictor treats slots past the horizon.
        let streamed = window.predictor(noise).predict(2, 3);
        let buffered = jocal_sim::predictor::PredictionWindow::predict(&batch, 2, 3);
        assert_eq!(streamed, buffered);
        window.advance();
        window.advance();
        assert!(window.front().is_none());
        assert_eq!(window.buffered(), 0);
        assert_eq!(window.start(), 4);
        assert_eq!(window.peak_buffered(), 3);
    }

    #[test]
    fn free_list_recycles_across_advance_and_refill_cycles() {
        let s = ScenarioConfig::tiny().with_horizon(6).build(55).unwrap();
        let mut source = TraceSource::new(s.demand.clone());
        let mut window = SlidingWindow::new(&s.network);
        window.fill(2, &mut source).unwrap();
        assert_eq!(window.free.len(), 0, "initial fill has nothing to reuse");
        for _ in 0..4 {
            window.advance();
            assert_eq!(window.free.len(), 1, "advance parks the slot for reuse");
            window.fill(2, &mut source).unwrap();
            assert_eq!(window.free.len(), 0, "refill reuses the parked slot");
        }
        // Drain past exhaustion: the scratch buffer of the failed pull
        // and every remaining slot all land back on the free list — the
        // window only ever owns the two allocations it started with.
        while window.front().is_some() {
            window.advance();
            window.fill(2, &mut source).unwrap();
        }
        assert!(window.exhausted());
        assert_eq!(window.free.len(), 2, "every allocation is recycled");
        assert_eq!(window.peak_buffered(), 2);
    }

    #[test]
    fn advance_recycles_allocations() {
        let s = ScenarioConfig::tiny().build(52).unwrap();
        let mut source = TraceSource::new(s.demand.clone());
        let mut window = SlidingWindow::new(&s.network);
        window.fill(2, &mut source).unwrap();
        assert_eq!(window.buffered(), 2);
        window.advance();
        assert_eq!(window.buffered(), 1);
        assert_eq!(window.start(), 1);
        window.fill(2, &mut source).unwrap();
        assert_eq!(window.buffered(), 2);
        assert!(window.peak_buffered() <= 2);
    }

    #[test]
    fn window_predictor_is_stable_exactly_when_noise_free() {
        let s = ScenarioConfig::tiny().build(55).unwrap();
        let mut source = TraceSource::new(s.demand.clone());
        let mut window = SlidingWindow::new(&s.network);
        window.fill(2, &mut source).unwrap();
        use jocal_sim::predictor::PredictionWindow as _;
        // η = 0: buffered truth is keyed by absolute slot, so the view
        // is re-request stable and policies may build incrementally.
        assert!(window
            .predictor(NoiseModel::new(0.0, 9))
            .stable_predictions());
        // η > 0: noise draws are keyed by decision time, matching the
        // batch predictors' instability.
        assert!(!window
            .predictor(NoiseModel::new(0.1, 9))
            .stable_predictions());
    }
}
