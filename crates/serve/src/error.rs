//! Error type for the serving engine.

use jocal_core::CoreError;
use jocal_sim::SimError;
use std::fmt;
use std::io;

/// Anything that can go wrong while serving a demand stream.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// The simulator substrate rejected a source or trace.
    Sim(SimError),
    /// A policy or solver failed (or a plan could not be repaired).
    Core(CoreError),
    /// I/O failure while reading a trace or writing metrics.
    Io(io::Error),
    /// Invalid engine configuration or a malformed source.
    Config {
        /// Which knob or input is at fault.
        what: &'static str,
        /// Human-readable detail.
        detail: String,
    },
}

impl ServeError {
    /// Builds a configuration error.
    #[must_use]
    pub fn config(what: &'static str, detail: impl Into<String>) -> Self {
        ServeError::Config {
            what,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Sim(e) => write!(f, "simulation error: {e}"),
            ServeError::Core(e) => write!(f, "solver error: {e}"),
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Config { what, detail } => write!(f, "invalid {what}: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Sim(e) => Some(e),
            ServeError::Core(e) => Some(e),
            ServeError::Io(e) => Some(e),
            ServeError::Config { .. } => None,
        }
    }
}

impl From<SimError> for ServeError {
    fn from(e: SimError) -> Self {
        ServeError::Sim(e)
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}
