//! Streaming serving engine for the `jocal` workspace.
//!
//! The paper's online algorithms (RHC/AFHC/CHC, Section IV) are
//! inherently streaming — each slot needs only a `w`-step prediction
//! window — but the batch runner in `jocal-online` materializes
//! full-horizon plans, capping the horizons it can reach. This crate is
//! the bounded-memory alternative: a long-lived slot loop whose state is
//! `O(w)` in the prediction window and independent of the stream length.
//!
//! * [`source`] — [`source::DemandSource`]: incremental slot ingestion
//!   (buffered traces, unbounded synthetic demand, Poisson-realized
//!   request streams, chunked CSV trace files).
//! * [`window`] — the sliding `O(w)` slot buffer and the
//!   [`jocal_sim::predictor::PredictionWindow`] view policies consume.
//! * [`cell`] — [`cell::CellCore`]: one serving cell's complete loop
//!   state behind a `start → step* → finish` lifecycle, shared by the
//!   single-cell engine and the multi-cell `jocal-cluster` runtime.
//! * [`engine`] — the slot loop: decide → repair → charge → dispatch,
//!   double-buffered per-slot state, no full-horizon tensors.
//! * [`metrics`] — per-slot [`metrics::SlotMetrics`], counters, latency
//!   histograms, JSON-lines export with a reproducibility header.
//!
//! Streaming and batch execution are *bit-identical* on the same seeded
//! finite trace: the engine shares the batch runner's repair and
//! accounting code paths, and its window assembly is a `memcpy` of the
//! same slots the batch predictor reads (see `tests/parity.rs`).
//!
//! # Example
//!
//! ```
//! use jocal_core::{CacheState, CostModel};
//! use jocal_online::rhc::RhcPolicy;
//! use jocal_serve::engine::{ServeConfig, ServeEngine};
//! use jocal_serve::metrics::MemorySink;
//! use jocal_serve::source::TraceSource;
//! use jocal_sim::scenario::ScenarioConfig;
//!
//! let s = ScenarioConfig::tiny().build(3)?;
//! let model = CostModel::paper();
//! let engine = ServeEngine::new(&s.network, &model, ServeConfig::new(3, 42));
//! let mut policy = RhcPolicy::new(3, Default::default());
//! let mut sink = MemorySink::default();
//! let report = engine.run(
//!     &mut TraceSource::new(s.demand.clone()),
//!     &mut policy,
//!     CacheState::empty(&s.network),
//!     &mut sink,
//! )?;
//! assert_eq!(report.summary.slots, s.demand.horizon());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod cell;
pub mod engine;
pub mod error;
pub mod metrics;
pub mod source;
pub mod window;

pub use engine::{ServeConfig, ServeEngine, ServeReport};
pub use error::ServeError;
pub use metrics::{
    JsonLinesSink, MemorySink, MetricsSink, NullSink, RatioRecord, ServeSummary, SharedMemorySink,
    SlotMetrics, SplitLedgerSink,
};
pub use source::{
    ChunkedTraceReader, DemandSource, PoissonRealizedSource, SyntheticSource, TraceSource,
};
