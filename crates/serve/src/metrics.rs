//! Observability for the serving engine.
//!
//! Every slot produces one [`SlotMetrics`] record; a [`MetricsSink`]
//! decides where it goes (JSON-lines, memory, nowhere). The engine also
//! folds slots into running counters and a solve-latency histogram and
//! emits a final [`ServeSummary`].
//!
//! The JSON-lines stream is self-describing: the first record is a
//! `"header"` carrying the run's seeds (request seed and noise seed), so
//! any run can be reproduced from its metrics file alone.

use crate::error::ServeError;
use jocal_core::accounting::CostBreakdown;
use jocal_core::ledger::SlotLedger;
use serde::Serialize;
use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// One slot's observed behavior.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SlotMetrics {
    /// Absolute slot index.
    pub slot: usize,
    /// Realized requests in the slot (Poisson draws from the truth).
    pub requests: u64,
    /// Requests served by SBS caches (offloaded).
    pub sbs_served: f64,
    /// Requests that wanted an SBS but spilled to the BS on bandwidth
    /// overflow.
    pub spilled: f64,
    /// Requests served by the BS (fallback + spill).
    pub bs_served: f64,
    /// `sbs_served / requests` (`0` on an idle slot).
    pub hit_ratio: f64,
    /// Realized cost decomposition of the executed slot.
    pub cost: CostBreakdown,
    /// SBSs whose load split needed bandwidth repair this slot.
    pub repair_scaled_sbs: usize,
    /// Wall-clock time of the policy's decision, in microseconds.
    pub solve_us: u64,
    /// Slots buffered by the sliding window when deciding.
    pub buffered_slots: usize,
}

/// First record of a metrics stream: everything needed to reproduce the
/// run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RunHeader {
    /// Policy name (e.g. `"RHC"`).
    pub policy: String,
    /// Request-sampling seed — the single RNG threaded through the
    /// stream's Poisson realizations.
    pub seed: u64,
    /// Prediction-noise seed.
    pub noise_seed: u64,
    /// Prediction perturbation level `η`.
    pub eta: f64,
    /// Prediction window `w`.
    pub window: usize,
    /// Planning horizon the policies were given (`None` = unbounded).
    pub horizon: Option<usize>,
}

/// Aggregate solve-latency statistics.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LatencySummary {
    /// Mean latency (µs).
    pub mean_us: f64,
    /// Median (µs, from the histogram).
    pub p50_us: u64,
    /// 95th percentile (µs, from the histogram).
    pub p95_us: u64,
    /// 99th percentile (µs, from the histogram).
    pub p99_us: u64,
    /// Maximum observed (µs).
    pub max_us: u64,
}

/// Final record of a metrics stream.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServeSummary {
    /// Copy of the run header for self-contained summaries.
    pub header: RunHeader,
    /// Slots actually served.
    pub slots: usize,
    /// Total realized requests.
    pub requests: u64,
    /// Total requests served from SBS caches.
    pub sbs_served: f64,
    /// Total bandwidth-overflow spill.
    pub spilled: f64,
    /// Total BS-served requests.
    pub bs_served: f64,
    /// Overall SBS hit ratio.
    pub hit_ratio: f64,
    /// Total realized cost decomposition.
    pub cost: CostBreakdown,
    /// Slots in which at least one SBS needed bandwidth repair.
    pub repair_activations: usize,
    /// High-water mark of buffered demand slots — the engine's memory
    /// bound (`≤ w`, never `O(T)`).
    pub peak_buffered_slots: usize,
    /// Solve-latency aggregate.
    pub solve_latency: LatencySummary,
}

/// Power-of-two bucketed latency histogram (µs), 0 .. ≥2³⁰.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyHistogram {
    counts: [u64; 32],
    total: u64,
    sum_us: u128,
    max_us: u64,
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn observe(&mut self, us: u64) {
        let bucket = (64 - us.leading_zeros()).min(31) as usize;
        self.counts[bucket] += 1;
        self.total += 1;
        self.sum_us += u128::from(us);
        self.max_us = self.max_us.max(us);
    }

    /// Upper bound of the bucket containing quantile `q ∈ [0, 1]`.
    #[must_use]
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (bucket, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if bucket == 0 { 0 } else { (1u64 << bucket) - 1 };
            }
        }
        self.max_us
    }

    /// Folds the histogram into a [`LatencySummary`].
    #[must_use]
    pub fn summarize(&self) -> LatencySummary {
        LatencySummary {
            mean_us: if self.total == 0 {
                0.0
            } else {
                self.sum_us as f64 / self.total as f64
            },
            p50_us: self.quantile_upper_bound(0.5),
            p95_us: self.quantile_upper_bound(0.95),
            p99_us: self.quantile_upper_bound(0.99),
            max_us: self.max_us,
        }
    }

    /// Number of observations.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether no observation was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
}

/// One reading of the online optimality-gap tracker (emitted when a
/// dual-bound block completes; see [`jocal_online::ratio`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RatioRecord {
    /// Slot whose completion closed the block.
    pub slot: usize,
    /// Dual-bound blocks certified so far.
    pub blocks: usize,
    /// Slots covered by those blocks.
    pub covered_slots: usize,
    /// Realized policy cost over the covered slots.
    pub realized_cost: f64,
    /// Certified lower bound on the offline optimum over those slots.
    pub lower_bound: f64,
    /// Running empirical competitive ratio (`None` while the bound is 0).
    pub ratio: Option<f64>,
    /// The configured watchdog bound (the paper's `1/ρ` for CHC).
    pub bound: f64,
    /// Whether the running ratio currently exceeds the bound.
    pub exceeds_bound: bool,
}

/// Destination for metrics records.
pub trait MetricsSink: fmt::Debug {
    /// Called once before the first slot.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    fn header(&mut self, header: &RunHeader) -> Result<(), ServeError>;

    /// Called once per served slot.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    fn slot(&mut self, metrics: &SlotMetrics) -> Result<(), ServeError>;

    /// Called once after the last slot.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    fn summary(&mut self, summary: &ServeSummary) -> Result<(), ServeError>;

    /// Called once per served slot *when the engine's cost ledger is
    /// enabled* ([`crate::engine::ServeConfig::ledger`]), right after
    /// [`Self::slot`], with the slot's full per-SBS cost attribution.
    /// Sinks that don't care inherit this no-op.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    fn ledger(&mut self, ledger: &SlotLedger) -> Result<(), ServeError> {
        let _ = ledger;
        Ok(())
    }

    /// Called when the optimality-gap tracker completes a dual-bound
    /// block ([`crate::engine::ServeConfig::ratio`]). Sinks that don't
    /// care inherit this no-op.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    fn ratio(&mut self, record: &RatioRecord) -> Result<(), ServeError> {
        let _ = record;
        Ok(())
    }

    /// Pushes buffered records to their destination. The engine calls
    /// this on its *error* path so records observed before a failure
    /// survive (the success path flushes through [`Self::summary`]).
    /// In-memory sinks need not override the default no-op.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    fn flush(&mut self) -> Result<(), ServeError> {
        Ok(())
    }
}

impl<S: MetricsSink + ?Sized> MetricsSink for Box<S> {
    fn header(&mut self, header: &RunHeader) -> Result<(), ServeError> {
        (**self).header(header)
    }

    fn slot(&mut self, metrics: &SlotMetrics) -> Result<(), ServeError> {
        (**self).slot(metrics)
    }

    fn ledger(&mut self, ledger: &SlotLedger) -> Result<(), ServeError> {
        (**self).ledger(ledger)
    }

    fn ratio(&mut self, record: &RatioRecord) -> Result<(), ServeError> {
        (**self).ratio(record)
    }

    fn summary(&mut self, summary: &ServeSummary) -> Result<(), ServeError> {
        (**self).summary(summary)
    }

    fn flush(&mut self) -> Result<(), ServeError> {
        (**self).flush()
    }
}

/// Discards everything (pure benchmarking).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl MetricsSink for NullSink {
    fn header(&mut self, _: &RunHeader) -> Result<(), ServeError> {
        Ok(())
    }

    fn slot(&mut self, _: &SlotMetrics) -> Result<(), ServeError> {
        Ok(())
    }

    fn summary(&mut self, _: &ServeSummary) -> Result<(), ServeError> {
        Ok(())
    }
}

/// Buffers every record in memory (tests, small runs).
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    /// The header, once received.
    pub header: Option<RunHeader>,
    /// All slot records in order.
    pub slots: Vec<SlotMetrics>,
    /// All ledger records in order (empty unless the ledger is on).
    pub ledgers: Vec<SlotLedger>,
    /// All ratio records in order (empty unless the tracker is on).
    pub ratios: Vec<RatioRecord>,
    /// The final summary, once received.
    pub summary: Option<ServeSummary>,
}

impl MetricsSink for MemorySink {
    fn header(&mut self, header: &RunHeader) -> Result<(), ServeError> {
        self.header = Some(header.clone());
        Ok(())
    }

    fn slot(&mut self, metrics: &SlotMetrics) -> Result<(), ServeError> {
        self.slots.push(metrics.clone());
        Ok(())
    }

    fn ledger(&mut self, ledger: &SlotLedger) -> Result<(), ServeError> {
        self.ledgers.push(ledger.clone());
        Ok(())
    }

    fn ratio(&mut self, record: &RatioRecord) -> Result<(), ServeError> {
        self.ratios.push(*record);
        Ok(())
    }

    fn summary(&mut self, summary: &ServeSummary) -> Result<(), ServeError> {
        self.summary = Some(summary.clone());
        Ok(())
    }
}

/// A cloneable handle to a [`MemorySink`]: every clone appends to the
/// same underlying store. For drivers that *consume* their sink — a
/// `jocal-cluster` cell owns its sink for the whole run — hand one
/// clone to the driver and keep another to [`Self::snapshot`] the
/// records afterwards.
#[derive(Debug, Clone, Default)]
pub struct SharedMemorySink(Arc<Mutex<MemorySink>>);

impl SharedMemorySink {
    /// Creates an empty shared sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of everything recorded so far.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder of the sink panicked mid-record.
    #[must_use]
    pub fn snapshot(&self) -> MemorySink {
        self.0.lock().expect("shared sink poisoned").clone()
    }

    fn with<R>(&self, f: impl FnOnce(&mut MemorySink) -> R) -> R {
        f(&mut self.0.lock().expect("shared sink poisoned"))
    }
}

impl MetricsSink for SharedMemorySink {
    fn header(&mut self, header: &RunHeader) -> Result<(), ServeError> {
        self.with(|s| s.header(header))
    }

    fn slot(&mut self, metrics: &SlotMetrics) -> Result<(), ServeError> {
        self.with(|s| s.slot(metrics))
    }

    fn ledger(&mut self, ledger: &SlotLedger) -> Result<(), ServeError> {
        self.with(|s| s.ledger(ledger))
    }

    fn ratio(&mut self, record: &RatioRecord) -> Result<(), ServeError> {
        self.with(|s| s.ratio(record))
    }

    fn summary(&mut self, summary: &ServeSummary) -> Result<(), ServeError> {
        self.with(|s| s.summary(summary))
    }
}

/// Streams records as JSON-lines: one `{"kind": ..., "data": ...}`
/// object per line — a `header` line, then one `slot` line per slot,
/// then a `summary` line.
pub struct JsonLinesSink<W: Write> {
    out: W,
}

impl<W: Write> fmt::Debug for JsonLinesSink<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonLinesSink").finish()
    }
}

impl<W: Write> JsonLinesSink<W> {
    /// Wraps a writer.
    #[must_use]
    pub fn new(out: W) -> Self {
        JsonLinesSink { out }
    }

    /// Consumes the sink, returning the writer.
    #[must_use]
    pub fn into_inner(self) -> W {
        self.out
    }

    fn write_record<T: Serialize>(&mut self, kind: &str, data: &T) -> Result<(), ServeError> {
        let body = serde_json::to_string(data)
            .map_err(|e| ServeError::config("metrics", format!("serialization failed: {e}")))?;
        writeln!(self.out, "{{\"kind\":\"{kind}\",\"data\":{body}}}")?;
        Ok(())
    }
}

impl<W: Write> MetricsSink for JsonLinesSink<W> {
    fn header(&mut self, header: &RunHeader) -> Result<(), ServeError> {
        // Flush immediately: the header carries the run's seeds, and a
        // run that dies (or serves zero slots) must still leave a
        // reproducible stream on disk.
        self.write_record("header", header)?;
        self.out.flush()?;
        Ok(())
    }

    fn slot(&mut self, metrics: &SlotMetrics) -> Result<(), ServeError> {
        self.write_record("slot", metrics)
    }

    fn ledger(&mut self, ledger: &SlotLedger) -> Result<(), ServeError> {
        self.write_record("ledger", ledger)
    }

    fn ratio(&mut self, record: &RatioRecord) -> Result<(), ServeError> {
        self.write_record("ratio", record)
    }

    fn summary(&mut self, summary: &ServeSummary) -> Result<(), ServeError> {
        let r = self.write_record("summary", summary);
        self.out.flush()?;
        r
    }

    fn flush(&mut self) -> Result<(), ServeError> {
        self.out.flush()?;
        Ok(())
    }
}

/// Routes ledger records to a dedicated secondary sink while everything
/// else flows to the primary — so a `--ledger-out` file can carry the
/// (potentially large) per-SBS attributions without inflating the main
/// metrics stream. The run header goes to **both** sinks, keeping the
/// ledger stream self-describing even when it ends up with zero slots.
#[derive(Debug)]
pub struct SplitLedgerSink<A, B> {
    primary: A,
    ledger: B,
}

impl<A: MetricsSink, B: MetricsSink> SplitLedgerSink<A, B> {
    /// Combines a primary metrics sink and a ledger sink.
    #[must_use]
    pub fn new(primary: A, ledger: B) -> Self {
        SplitLedgerSink { primary, ledger }
    }

    /// Consumes the splitter, returning both sinks.
    #[must_use]
    pub fn into_inner(self) -> (A, B) {
        (self.primary, self.ledger)
    }
}

impl<A: MetricsSink, B: MetricsSink> MetricsSink for SplitLedgerSink<A, B> {
    fn header(&mut self, header: &RunHeader) -> Result<(), ServeError> {
        self.primary.header(header)?;
        self.ledger.header(header)
    }

    fn slot(&mut self, metrics: &SlotMetrics) -> Result<(), ServeError> {
        self.primary.slot(metrics)
    }

    fn ledger(&mut self, ledger: &SlotLedger) -> Result<(), ServeError> {
        self.ledger.ledger(ledger)
    }

    fn ratio(&mut self, record: &RatioRecord) -> Result<(), ServeError> {
        self.primary.ratio(record)
    }

    fn summary(&mut self, summary: &ServeSummary) -> Result<(), ServeError> {
        self.primary.summary(summary)
    }

    fn flush(&mut self) -> Result<(), ServeError> {
        self.primary.flush()?;
        self.ledger.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_tracks_quantiles_and_mean() {
        let mut h = LatencyHistogram::default();
        for us in [1u64, 2, 3, 100, 1000] {
            h.observe(us);
        }
        assert_eq!(h.len(), 5);
        let s = h.summarize();
        assert!((s.mean_us - 221.2).abs() < 1e-9);
        assert_eq!(s.max_us, 1000);
        assert!(s.p50_us <= s.p95_us);
        assert!(s.p95_us >= 1000 / 2, "p95 bucket should cover the tail");
    }

    #[test]
    fn empty_histogram_summarizes_to_zero() {
        let h = LatencyHistogram::default();
        assert!(h.is_empty());
        let s = h.summarize();
        assert_eq!(s.mean_us, 0.0);
        assert_eq!(s.p50_us, 0);
        assert_eq!(s.max_us, 0);
    }

    #[test]
    fn quantiles_are_monotone_including_p99() {
        let mut h = LatencyHistogram::default();
        for us in 0..1000u64 {
            h.observe(us);
        }
        let s = h.summarize();
        assert!(s.p50_us <= s.p95_us, "{s:?}");
        assert!(s.p95_us <= s.p99_us, "{s:?}");
        assert!(s.p99_us >= 512, "p99 of 0..1000 sits in the top bucket");
        assert_eq!(s.max_us, 999);
    }

    /// A writer that counts flushes, for asserting sink durability.
    #[derive(Debug, Default)]
    struct FlushCounter {
        bytes: Vec<u8>,
        flushes: usize,
    }

    impl Write for FlushCounter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.bytes.extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            self.flushes += 1;
            Ok(())
        }
    }

    #[test]
    fn header_is_flushed_immediately_and_flush_is_explicit() {
        let header = RunHeader {
            policy: "RHC".into(),
            seed: 1,
            noise_seed: 2,
            eta: 0.0,
            window: 3,
            horizon: Some(0),
        };
        let mut sink = JsonLinesSink::new(FlushCounter::default());
        sink.header(&header).unwrap();
        // A zero-slot (or crashed) run still has the seeds on disk.
        let w = sink.into_inner();
        assert_eq!(w.flushes, 1, "header write must flush");
        assert!(String::from_utf8(w.bytes).unwrap().contains("\"seed\":1"));

        let mut sink = JsonLinesSink::new(FlushCounter::default());
        sink.flush().unwrap();
        assert_eq!(sink.into_inner().flushes, 1);
    }

    #[test]
    fn split_sink_keeps_ledger_stream_self_describing_at_zero_slots() {
        // A `--ledger-out` run that serves zero slots (or dies before
        // the first one) must still leave a reproducible header on the
        // ledger stream — same durability contract as the main stream.
        let header = RunHeader {
            policy: "CHC(w=3,r=2)".into(),
            seed: 9,
            noise_seed: 0,
            eta: 0.0,
            window: 3,
            horizon: Some(0),
        };
        let mut sink = SplitLedgerSink::new(
            JsonLinesSink::new(FlushCounter::default()),
            JsonLinesSink::new(FlushCounter::default()),
        );
        sink.header(&header).unwrap();
        let (primary, ledger) = sink.into_inner();
        let (primary, ledger) = (primary.into_inner(), ledger.into_inner());
        assert_eq!(ledger.flushes, 1, "ledger header write must flush");
        let text = String::from_utf8(ledger.bytes).unwrap();
        assert!(text.starts_with("{\"kind\":\"header\","), "{text}");
        assert!(text.contains("\"seed\":9"), "{text}");
        assert!(String::from_utf8(primary.bytes)
            .unwrap()
            .contains("\"seed\":9"));
    }

    #[test]
    fn split_sink_routes_ledgers_away_from_the_main_stream() {
        let mut sink = SplitLedgerSink::new(MemorySink::default(), MemorySink::default());
        sink.ledger(&SlotLedger::default()).unwrap();
        sink.ratio(&RatioRecord {
            slot: 3,
            blocks: 1,
            covered_slots: 4,
            realized_cost: 2.0,
            lower_bound: 1.0,
            ratio: Some(2.0),
            bound: 2.618,
            exceeds_bound: false,
        })
        .unwrap();
        let (primary, ledger) = sink.into_inner();
        assert!(primary.ledgers.is_empty());
        assert_eq!(ledger.ledgers.len(), 1);
        assert_eq!(primary.ratios.len(), 1, "ratio stays on the primary");
        assert!(ledger.ratios.is_empty());
    }

    #[test]
    fn json_lines_sink_tags_ledger_and_ratio_records() {
        let mut sink = JsonLinesSink::new(Vec::new());
        sink.ledger(&SlotLedger::default()).unwrap();
        sink.ratio(&RatioRecord {
            slot: 0,
            blocks: 1,
            covered_slots: 2,
            realized_cost: 1.0,
            lower_bound: 0.5,
            ratio: Some(2.0),
            bound: 2.618,
            exceeds_bound: false,
        })
        .unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let mut lines = text.lines();
        assert!(lines.next().unwrap().starts_with("{\"kind\":\"ledger\","));
        let ratio_line = lines.next().unwrap();
        assert!(
            ratio_line.starts_with("{\"kind\":\"ratio\","),
            "{ratio_line}"
        );
        assert!(ratio_line.contains("\"lower_bound\":0.5"), "{ratio_line}");
    }

    #[test]
    fn json_lines_sink_emits_tagged_records() {
        let header = RunHeader {
            policy: "RHC".into(),
            seed: 42,
            noise_seed: 7,
            eta: 0.1,
            window: 5,
            horizon: Some(100),
        };
        let mut sink = JsonLinesSink::new(Vec::new());
        sink.header(&header).unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.starts_with("{\"kind\":\"header\","), "{text}");
        assert!(text.contains("\"seed\":42"), "{text}");
        assert!(text.trim_end().ends_with('}'));
    }
}
