//! Incremental demand ingestion.
//!
//! The serving engine never sees a full-horizon tensor: a
//! [`DemandSource`] hands it one slot at a time, written into a
//! caller-owned horizon-1 [`DemandTrace`] so the steady state allocates
//! nothing. Adapters cover the three ingestion regimes of the workspace:
//!
//! * [`TraceSource`] — a buffered finite trace (generated scenarios,
//!   replayed experiments). Slots are `memcpy`'d out, so the stream is
//!   bit-identical to the buffered truth — the property the
//!   streaming/batch parity tests rest on.
//! * [`SyntheticSource`] — unbounded procedural demand from
//!   [`jocal_sim::stream::StreamingDemand`], for long-horizon runs where
//!   even the truth tensor must not exist.
//! * [`PoissonRealizedSource`] — wraps any source and replaces each
//!   slot's mean rates with integer Poisson realizations drawn from
//!   [`jocal_sim::requests`], threading **one** seeded RNG through the
//!   whole run so it reproduces from a single `--seed`.
//! * [`ChunkedTraceReader`] — streams the CSV trace format
//!   ([`jocal_sim::trace`]) slot by slot from any reader without ever
//!   materializing the file's full horizon.

use crate::error::ServeError;
use jocal_sim::demand::DemandTrace;
use jocal_sim::requests::sample_slot_rng;
use jocal_sim::stream::StreamingDemand;
use jocal_sim::topology::Network;
use jocal_sim::trace::TRACE_MAGIC;
use jocal_sim::{ClassId, ContentId, SbsId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::io::BufRead;

/// A stream of per-slot demand.
pub trait DemandSource: fmt::Debug {
    /// Total number of slots this source will yield, if finite and known
    /// up front. Consulted *before* the first [`DemandSource::next_slot`]
    /// call; used by the engine as the policies' planning horizon `T`.
    fn len_hint(&self) -> Option<usize>;

    /// Writes the next slot's demand into `out` (a horizon-1 trace
    /// shaped like the network). Returns `false` when the stream is
    /// exhausted, in which case `out` is unspecified.
    ///
    /// # Errors
    ///
    /// Propagates parse/shape failures from the underlying medium.
    fn next_slot(&mut self, out: &mut DemandTrace) -> Result<bool, ServeError>;
}

/// Streams a buffered finite trace slot by slot (bit-exact `memcpy`).
#[derive(Debug, Clone)]
pub struct TraceSource {
    trace: DemandTrace,
    pos: usize,
}

impl TraceSource {
    /// Wraps a full trace (e.g. a generated scenario's ground truth).
    #[must_use]
    pub fn new(trace: DemandTrace) -> Self {
        TraceSource { trace, pos: 0 }
    }
}

impl DemandSource for TraceSource {
    fn len_hint(&self) -> Option<usize> {
        Some(self.trace.horizon())
    }

    fn next_slot(&mut self, out: &mut DemandTrace) -> Result<bool, ServeError> {
        if self.pos >= self.trace.horizon() {
            return Ok(false);
        }
        out.copy_slot_from(0, &self.trace, self.pos)?;
        self.pos += 1;
        Ok(true)
    }
}

/// Unbounded (or length-capped) procedural demand.
#[derive(Debug, Clone)]
pub struct SyntheticSource {
    generator: StreamingDemand,
    network: Network,
    pos: usize,
    limit: Option<usize>,
}

impl SyntheticSource {
    /// Streams `generator` over `network` without end.
    #[must_use]
    pub fn unbounded(generator: StreamingDemand, network: Network) -> Self {
        SyntheticSource {
            generator,
            network,
            pos: 0,
            limit: None,
        }
    }

    /// Streams exactly `slots` slots.
    #[must_use]
    pub fn bounded(generator: StreamingDemand, network: Network, slots: usize) -> Self {
        SyntheticSource {
            generator,
            network,
            pos: 0,
            limit: Some(slots),
        }
    }
}

impl DemandSource for SyntheticSource {
    fn len_hint(&self) -> Option<usize> {
        self.limit
    }

    fn next_slot(&mut self, out: &mut DemandTrace) -> Result<bool, ServeError> {
        if self.limit.is_some_and(|l| self.pos >= l) {
            return Ok(false);
        }
        let slot = self.generator.slot(&self.network, self.pos)?;
        out.copy_slot_from(0, &slot, 0)?;
        self.pos += 1;
        Ok(true)
    }
}

/// Replaces mean rates with Poisson-realized integer counts, one seeded
/// RNG threaded through the entire stream.
pub struct PoissonRealizedSource<S> {
    inner: S,
    rng: StdRng,
    seed: u64,
    scratch: Option<DemandTrace>,
}

impl<S: fmt::Debug> fmt::Debug for PoissonRealizedSource<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PoissonRealizedSource")
            .field("inner", &self.inner)
            .field("seed", &self.seed)
            .finish()
    }
}

impl<S: DemandSource> PoissonRealizedSource<S> {
    /// Wraps `inner`, drawing realizations from a run-level `seed`.
    #[must_use]
    pub fn new(inner: S, seed: u64) -> Self {
        PoissonRealizedSource {
            inner,
            rng: StdRng::seed_from_u64(seed),
            seed,
            scratch: None,
        }
    }

    /// The run-level request seed (surfaced in metrics headers).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl<S: DemandSource> DemandSource for PoissonRealizedSource<S> {
    fn len_hint(&self) -> Option<usize> {
        self.inner.len_hint()
    }

    fn next_slot(&mut self, out: &mut DemandTrace) -> Result<bool, ServeError> {
        let scratch = self.scratch.get_or_insert_with(|| out.window(0, 1));
        if !self.inner.next_slot(scratch)? {
            return Ok(false);
        }
        let counts = sample_slot_rng(&mut self.rng, scratch, 0);
        for n in 0..scratch.num_sbs() {
            for m in 0..scratch.num_classes(SbsId(n)) {
                for k in 0..scratch.num_contents() {
                    let c = counts.count(SbsId(n), ClassId(m), ContentId(k));
                    out.set_lambda(0, SbsId(n), ClassId(m), ContentId(k), f64::from(c))?;
                }
            }
        }
        Ok(true)
    }
}

/// One parsed trace row: `(t, sbs, class, content, λ)`.
type TraceRow = (usize, usize, usize, usize, f64);

/// Streams the CSV trace format slot by slot from any [`BufRead`].
///
/// The on-disk format ([`jocal_sim::trace::write_trace`]) emits rows in
/// non-decreasing `t` order, which is what makes single-pass chunked
/// reading possible; an out-of-order row is reported as a config error
/// rather than silently mis-assigned.
pub struct ChunkedTraceReader<R> {
    input: R,
    horizon: usize,
    pos: usize,
    line_no: usize,
    /// A row read ahead of the slot boundary.
    pending: Option<TraceRow>,
}

impl<R> fmt::Debug for ChunkedTraceReader<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChunkedTraceReader")
            .field("horizon", &self.horizon)
            .field("pos", &self.pos)
            .finish()
    }
}

impl<R: BufRead> ChunkedTraceReader<R> {
    /// Parses the trace header and prepares to stream rows.
    ///
    /// # Errors
    ///
    /// Returns a config error on a malformed magic line, shape header or
    /// column header.
    pub fn new(mut input: R) -> Result<Self, ServeError> {
        let mut line = String::new();
        input.read_line(&mut line)?;
        if line.trim() != TRACE_MAGIC {
            return Err(ServeError::config(
                "trace",
                "missing jocal-demand-trace magic line",
            ));
        }
        line.clear();
        input.read_line(&mut line)?;
        let mut horizon = None;
        for token in line.trim_start_matches('#').split_whitespace() {
            if let Some(v) = token.strip_prefix("horizon=") {
                horizon = v.parse().ok();
            }
        }
        let horizon =
            horizon.ok_or_else(|| ServeError::config("trace", "bad or missing horizon"))?;
        line.clear();
        input.read_line(&mut line)?;
        if line.trim() != "t,sbs,class,content,lambda" {
            return Err(ServeError::config("trace", "unexpected column header"));
        }
        Ok(ChunkedTraceReader {
            input,
            horizon,
            pos: 0,
            line_no: 3,
            pending: None,
        })
    }

    fn read_row(&mut self) -> Result<Option<TraceRow>, ServeError> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.input.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            self.line_no += 1;
            let row = line.trim();
            if row.is_empty() || row.starts_with('#') {
                continue;
            }
            let mut fields = row.split(',');
            let line_no = self.line_no;
            let mut field = |name: &'static str| -> Result<&str, ServeError> {
                fields.next().ok_or_else(|| {
                    ServeError::config("trace", format!("line {line_no}: missing field {name}"))
                })
            };
            let bad = |name: &'static str| {
                move |_| ServeError::config("trace", format!("line {line_no}: bad {name}"))
            };
            let t: usize = field("t")?.parse().map_err(bad("t"))?;
            let n: usize = field("sbs")?.parse().map_err(bad("sbs"))?;
            let m: usize = field("class")?.parse().map_err(bad("class"))?;
            let k: usize = field("content")?.parse().map_err(bad("content"))?;
            let v: f64 = field("lambda")?
                .parse()
                .map_err(|_| ServeError::config("trace", format!("line {line_no}: bad lambda")))?;
            // `f64::parse` happily accepts "NaN"/"inf"; admitted here a
            // non-finite rate would only surface as a solver panic many
            // slots later, so reject it at the stream boundary.
            if !v.is_finite() {
                return Err(ServeError::config(
                    "trace",
                    format!("line {line_no}: non-finite lambda"),
                ));
            }
            return Ok(Some((t, n, m, k, v)));
        }
    }
}

impl<R: BufRead> DemandSource for ChunkedTraceReader<R> {
    fn len_hint(&self) -> Option<usize> {
        Some(self.horizon)
    }

    fn next_slot(&mut self, out: &mut DemandTrace) -> Result<bool, ServeError> {
        if self.pos >= self.horizon {
            return Ok(false);
        }
        let t = self.pos;
        // Zero entries are implied by the format.
        out.map_in_place(|_| 0.0);
        loop {
            let row = match self.pending.take() {
                Some(row) => row,
                None => match self.read_row()? {
                    Some(row) => row,
                    None => break,
                },
            };
            if row.0 > t {
                self.pending = Some(row);
                break;
            }
            if row.0 < t {
                return Err(ServeError::config(
                    "trace",
                    format!("rows out of t order near line {}", self.line_no),
                ));
            }
            let (_, n, m, k, v) = row;
            out.set_lambda(0, SbsId(n), ClassId(m), ContentId(k), v)?;
        }
        self.pos += 1;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jocal_sim::scenario::ScenarioConfig;
    use jocal_sim::trace::write_trace;
    use std::io::BufReader;

    fn drain(source: &mut dyn DemandSource, template: &DemandTrace) -> Vec<DemandTrace> {
        let mut out = Vec::new();
        let mut buf = template.window(0, 1);
        while source.next_slot(&mut buf).unwrap() {
            out.push(buf.clone());
        }
        out
    }

    #[test]
    fn trace_source_replays_bit_exactly() {
        let s = ScenarioConfig::tiny().build(41).unwrap();
        let mut src = TraceSource::new(s.demand.clone());
        assert_eq!(src.len_hint(), Some(s.demand.horizon()));
        let slots = drain(&mut src, &s.demand);
        assert_eq!(slots.len(), s.demand.horizon());
        for (t, slot) in slots.iter().enumerate() {
            assert_eq!(*slot, s.demand.window(t, 1));
        }
    }

    #[test]
    fn chunked_reader_matches_buffered_read() {
        let s = ScenarioConfig::tiny().build(42).unwrap();
        let mut csv = Vec::new();
        write_trace(&s.demand, &mut csv).unwrap();
        let mut src = ChunkedTraceReader::new(BufReader::new(csv.as_slice())).unwrap();
        assert_eq!(src.len_hint(), Some(s.demand.horizon()));
        let slots = drain(&mut src, &s.demand);
        assert_eq!(slots.len(), s.demand.horizon());
        for (t, slot) in slots.iter().enumerate() {
            assert_eq!(*slot, s.demand.window(t, 1), "slot {t} differs");
        }
    }

    #[test]
    fn chunked_reader_rejects_garbage() {
        assert!(ChunkedTraceReader::new(BufReader::new(b"nonsense".as_slice())).is_err());
        let bad = format!("{TRACE_MAGIC}\n# horizon=2 contents=1 classes_per_sbs=1\nt,sbs,class,content,lambda\n1,0,0,0,1.0\n0,0,0,0,1.0\n");
        let s = ScenarioConfig::tiny().build(1).unwrap();
        let mut src = ChunkedTraceReader::new(BufReader::new(bad.as_bytes())).unwrap();
        let mut buf = s.demand.window(0, 1);
        // Slot 0 reads fine (row for t=1 is held pending)...
        assert!(src.next_slot(&mut buf).unwrap());
        // ...then the out-of-order t=0 row surfaces as an error.
        assert!(src.next_slot(&mut buf).is_err());
    }

    #[test]
    fn chunked_reader_rejects_empty_chunk() {
        // An empty stream has no magic line: a typed config error, not
        // a panic or a silent zero-slot run.
        let err = ChunkedTraceReader::new(BufReader::new(b"".as_slice())).unwrap_err();
        assert!(matches!(err, ServeError::Config { .. }), "{err:?}");
    }

    #[test]
    fn chunked_reader_rejects_short_row_mid_stream() {
        let s = ScenarioConfig::tiny().build(45).unwrap();
        let csv = format!(
            "{TRACE_MAGIC}\n# horizon=2 contents=1 classes_per_sbs=1\n\
             t,sbs,class,content,lambda\n0,0,0,0,1.0\n1,0,0\n"
        );
        let mut src = ChunkedTraceReader::new(BufReader::new(csv.as_bytes())).unwrap();
        let mut buf = s.demand.window(0, 1);
        // The truncated `1,0,0` row is hit while looking ahead for the
        // slot-0 boundary; a row that fails to parse has no trustworthy
        // `t`, so the reader fails fast with a typed error naming the
        // missing field and line instead of delivering a slot that may
        // be incomplete.
        let err = src.next_slot(&mut buf).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("missing field content"), "{msg}");
        assert!(msg.contains("line 5"), "{msg}");
    }

    #[test]
    fn chunked_reader_rejects_non_finite_lambda() {
        let s = ScenarioConfig::tiny().build(46).unwrap();
        for bad in ["NaN", "inf", "-inf"] {
            let csv = format!(
                "{TRACE_MAGIC}\n# horizon=1 contents=1 classes_per_sbs=1\n\
                 t,sbs,class,content,lambda\n0,0,0,0,{bad}\n"
            );
            let mut src = ChunkedTraceReader::new(BufReader::new(csv.as_bytes())).unwrap();
            let mut buf = s.demand.window(0, 1);
            let err = src.next_slot(&mut buf).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("non-finite lambda"), "{bad}: {msg}");
        }
    }

    #[test]
    fn chunked_reader_rejects_out_of_shape_row() {
        let s = ScenarioConfig::tiny().build(47).unwrap();
        let csv = format!(
            "{TRACE_MAGIC}\n# horizon=1 contents=1 classes_per_sbs=1\n\
             t,sbs,class,content,lambda\n0,99,0,0,1.0\n"
        );
        let mut src = ChunkedTraceReader::new(BufReader::new(csv.as_bytes())).unwrap();
        let mut buf = s.demand.window(0, 1);
        // SBS 99 does not exist in the tiny topology: typed index
        // error via `set_lambda`, not an out-of-bounds panic.
        assert!(src.next_slot(&mut buf).is_err());
    }

    #[test]
    fn poisson_source_is_reproducible_from_one_seed() {
        let s = ScenarioConfig::tiny().build(43).unwrap();
        let run = |seed| {
            let mut src = PoissonRealizedSource::new(TraceSource::new(s.demand.clone()), seed);
            drain(&mut src, &s.demand)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
        // Counts are integers.
        for slot in run(7) {
            for n in 0..slot.num_sbs() {
                for m in 0..slot.num_classes(SbsId(n)) {
                    for k in 0..slot.num_contents() {
                        let v = slot.lambda(0, SbsId(n), ClassId(m), ContentId(k));
                        assert_eq!(v, v.trunc());
                    }
                }
            }
        }
    }

    #[test]
    fn synthetic_source_respects_bound() {
        use jocal_sim::demand::TemporalPattern;
        use jocal_sim::popularity::ZipfMandelbrot;
        use jocal_sim::stream::StreamingDemand;
        let s = ScenarioConfig::tiny().build(44).unwrap();
        let pop = ZipfMandelbrot::new(s.network.num_contents(), 0.8, 2.0).unwrap();
        let gen = StreamingDemand::new(pop, TemporalPattern::Stationary, 3).unwrap();
        let mut src = SyntheticSource::bounded(gen.clone(), s.network.clone(), 5);
        assert_eq!(src.len_hint(), Some(5));
        assert_eq!(drain(&mut src, &s.demand).len(), 5);
        let unbounded = SyntheticSource::unbounded(gen, s.network.clone());
        assert_eq!(unbounded.len_hint(), None);
    }
}
