//! The long-lived slot loop.
//!
//! Per slot, the engine: tops up the sliding window from the source,
//! lets the policy decide through a [`crate::window::WindowPredictor`]
//! view, repairs
//! the decision against the realized slot (the *same*
//! [`jocal_online::repair`] code path the batch runner uses), charges
//! costs with [`jocal_core::accounting::evaluate_slot`], dispatches the
//! slot's Poisson-realized requests through the executed plan
//! (SBS hit / bandwidth-overflow spill / BS fallback), and emits one
//! [`crate::metrics::SlotMetrics`] record. State is double-buffered: one
//! previous/current cache-state pair, one reusable single-slot load
//! plan, and the `O(w)` slot buffer — nothing grows with the horizon.
//!
//! The per-slot machinery itself lives in [`crate::cell::CellCore`];
//! [`ServeEngine`] is the single-cell driver over one core, and the
//! `jocal-cluster` crate drives many cores over shared slots.

use crate::cell::CellCore;
use crate::error::ServeError;
use crate::metrics::{MetricsSink, RatioRecord, ServeSummary};
use crate::source::DemandSource;
use jocal_core::plan::{CacheState, LoadPlan};
use jocal_core::{CostModel, ShutdownFlag};
use jocal_flightrec::FlightRecorder;
use jocal_online::policy::OnlinePolicy;
use jocal_online::ratio::RatioOptions;
use jocal_sim::predictor::NoiseModel;
use jocal_sim::requests::RequestCounts;
use jocal_sim::topology::Network;
use jocal_sim::{ClassId, ContentId};
use jocal_telemetry::Telemetry;

/// Engine knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Prediction window `w` (also the slot-buffer bound).
    pub window: usize,
    /// Request-sampling seed: one RNG is seeded from this and threaded
    /// through every slot's Poisson draws.
    pub seed: u64,
    /// Prediction perturbation applied to the buffered window.
    pub noise: NoiseModel,
    /// Stop after this many slots even if the source continues (`None`
    /// = run until the source is exhausted; required for unbounded
    /// sources).
    pub max_slots: Option<usize>,
    /// Emit one [`jocal_core::SlotLedger`] per slot through
    /// [`MetricsSink::ledger`] — the full per-SBS cost attribution.
    /// Pure observation of already-made decisions: on/off runs are
    /// bit-identical.
    pub ledger: bool,
    /// Run the online optimality-gap tracker
    /// ([`jocal_online::ratio::DualBoundTracker`]), emitting one
    /// [`RatioRecord`] per completed dual-bound block and raising
    /// watchdog events when the empirical competitive ratio exceeds the
    /// configured bound or an executed slot violates a realized
    /// constraint. Also pure observation.
    pub ratio: Option<RatioOptions>,
}

impl ServeConfig {
    /// A window-`w` config with exact predictions and a fixed seed.
    #[must_use]
    pub fn new(window: usize, seed: u64) -> Self {
        ServeConfig {
            window,
            seed,
            noise: NoiseModel::new(0.0, 0),
            max_slots: None,
            ledger: false,
            ratio: None,
        }
    }
}

/// Outcome of a serve run (also delivered to the sink as the summary
/// record).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// The aggregate summary.
    pub summary: ServeSummary,
    /// Final reading of the optimality-gap tracker (`None` unless
    /// [`ServeConfig::ratio`] was configured).
    pub ratio: Option<RatioRecord>,
}

/// The streaming serving engine.
#[derive(Debug)]
pub struct ServeEngine<'a> {
    network: &'a Network,
    cost_model: &'a CostModel,
    config: ServeConfig,
    telemetry: Telemetry,
    shutdown: ShutdownFlag,
    recorder: FlightRecorder,
}

impl<'a> ServeEngine<'a> {
    /// Creates an engine over a network and cost model.
    ///
    /// # Panics
    ///
    /// Panics if the configured window is zero.
    #[must_use]
    pub fn new(network: &'a Network, cost_model: &'a CostModel, config: ServeConfig) -> Self {
        assert!(config.window >= 1, "serve window must be at least 1 slot");
        ServeEngine {
            network,
            cost_model,
            config,
            telemetry: Telemetry::disabled(),
            shutdown: ShutdownFlag::default(),
            recorder: FlightRecorder::disabled(),
        }
    }

    /// Attaches a cooperative stop flag, checked once per slot: when
    /// raised mid-run the engine stops serving, emits the summary and
    /// flushes the sink — exactly the graceful-drain path the gateway
    /// uses, so a Ctrl-C'd `jocal serve` still leaves durable
    /// metrics/ledger/ratio streams.
    #[must_use]
    pub fn with_shutdown(mut self, shutdown: ShutdownFlag) -> Self {
        self.shutdown = shutdown;
        self
    }

    /// Attaches a telemetry handle: each run instruments its policy
    /// (window-solve spans, rounding flips, the inner primal-dual
    /// solver) and records per-slot decide latency, request counts and
    /// repair activity. Observation never changes decisions — enabled
    /// and disabled runs are bit-identical.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The engine's telemetry handle.
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Attaches a flight recorder: each served slot emits one capture
    /// frame and watchdog trips append trigger records. Recording
    /// reads executed state only — recorder-on and recorder-off runs
    /// are bit-identical.
    #[must_use]
    pub fn with_recorder(mut self, recorder: FlightRecorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Drives `policy` over `source` until exhaustion (or `max_slots`),
    /// streaming metrics into `sink`.
    ///
    /// # Errors
    ///
    /// Propagates source, policy and sink failures. Unbounded sources
    /// require `max_slots`.
    pub fn run(
        &self,
        source: &mut dyn DemandSource,
        policy: &mut dyn OnlinePolicy,
        initial: CacheState,
        sink: &mut dyn MetricsSink,
    ) -> Result<ServeReport, ServeError> {
        let result = self.run_inner(source, policy, initial, sink);
        if result.is_err() {
            // Best effort: records observed before the failure (header
            // included) should survive in buffered sinks. The original
            // error stays the one reported.
            let _ = sink.flush();
        }
        result
    }

    fn run_inner(
        &self,
        source: &mut dyn DemandSource,
        policy: &mut dyn OnlinePolicy,
        initial: CacheState,
        sink: &mut dyn MetricsSink,
    ) -> Result<ServeReport, ServeError> {
        // The single-cell engine is exactly a one-cell loop over the
        // shared step core — the same code `jocal-cluster` fans out
        // over M cells, which is what makes the two bit-identical.
        let mut cell = CellCore::start(
            self.network,
            self.cost_model,
            self.config,
            &self.telemetry,
            source,
            policy,
            initial,
            sink,
        )?;
        cell.set_shutdown(self.shutdown.clone());
        cell.set_recorder(self.recorder.clone());
        while cell.step(source, policy, sink)? {}
        cell.finish(sink)
    }
}

/// Outcome of pushing one slot's realized requests through the executed
/// plan.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DispatchOutcome {
    /// Total realized requests.
    pub requests: u64,
    /// Requests served by SBS caches.
    pub sbs_served: f64,
    /// SBS-intended requests spilled to the BS on bandwidth overflow.
    pub spilled: f64,
    /// Requests served by the BS.
    pub bs_served: f64,
}

impl DispatchOutcome {
    /// `sbs_served / requests`, `0` when idle.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.sbs_served / self.requests as f64
        }
    }
}

/// Routes realized request counts through a repaired single-slot load
/// plan: each class sends the `y` fraction of its requests to the SBS;
/// if the realized SBS load exceeds `B_n` the excess spills back to the
/// BS (uniformly); everything else is BS fallback.
#[must_use]
pub fn dispatch_requests(
    network: &Network,
    counts: &RequestCounts,
    load: &LoadPlan,
) -> DispatchOutcome {
    let mut out = DispatchOutcome::default();
    for (n, sbs) in network.iter_sbs() {
        let mut intent = 0.0;
        let mut requests = 0u64;
        for m in 0..sbs.num_classes() {
            for k in 0..network.num_contents() {
                let c = counts.count(n, ClassId(m), ContentId(k));
                requests += u64::from(c);
                intent += load.y(0, n, ClassId(m), ContentId(k)) * f64::from(c);
            }
        }
        // `y` was repaired against mean rates; realized counts can still
        // overshoot the SBS bandwidth, and that overflow spills back.
        let spill = (intent - sbs.bandwidth()).max(0.0);
        let served = intent - spill;
        out.requests += requests;
        out.sbs_served += served;
        out.spilled += spill;
        out.bs_served += requests as f64 - served;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{MemorySink, NullSink, SlotMetrics};
    use crate::source::TraceSource;
    use jocal_online::policy::PolicyContext;
    use jocal_sim::scenario::ScenarioConfig;

    /// Caches the first `C` items and offloads everything it can.
    #[derive(Debug)]
    struct Greedy;

    impl OnlinePolicy for Greedy {
        fn name(&self) -> &str {
            "greedy"
        }

        fn decide(
            &mut self,
            _t: usize,
            ctx: &PolicyContext<'_>,
        ) -> Result<jocal_online::policy::Action, jocal_core::CoreError> {
            let mut cache = CacheState::empty(ctx.network);
            let mut load = LoadPlan::zeros(ctx.network, 1);
            for (n, sbs) in ctx.network.iter_sbs() {
                for k in 0..sbs.cache_capacity() {
                    cache.set(n, ContentId(k), true);
                    for m in 0..sbs.num_classes() {
                        load.set_y(0, n, ClassId(m), ContentId(k), 1.0);
                    }
                }
            }
            Ok(jocal_online::policy::Action { cache, load })
        }

        fn reset(&mut self) {}
    }

    #[test]
    fn engine_serves_a_finite_trace_end_to_end() {
        let s = ScenarioConfig::tiny().build(61).unwrap();
        let model = CostModel::paper();
        let engine = ServeEngine::new(&s.network, &model, ServeConfig::new(3, 42));
        let mut source = TraceSource::new(s.demand.clone());
        let mut sink = MemorySink::default();
        let report = engine
            .run(
                &mut source,
                &mut Greedy,
                CacheState::empty(&s.network),
                &mut sink,
            )
            .unwrap();
        assert_eq!(report.summary.slots, s.demand.horizon());
        assert_eq!(sink.slots.len(), s.demand.horizon());
        assert_eq!(sink.header.as_ref().unwrap().seed, 42);
        assert!(report.summary.peak_buffered_slots <= 3);
        assert!(report.summary.cost.total().is_finite());
        // Greedy caches and offloads, so some requests hit the SBS.
        assert!(report.summary.hit_ratio > 0.0);
        assert!(report.summary.hit_ratio <= 1.0 + 1e-12);
    }

    #[test]
    fn engine_is_reproducible_from_seeds() {
        let s = ScenarioConfig::tiny().build(62).unwrap();
        let model = CostModel::paper();
        let run = |seed| {
            let engine = ServeEngine::new(&s.network, &model, ServeConfig::new(3, seed));
            let mut sink = MemorySink::default();
            engine
                .run(
                    &mut TraceSource::new(s.demand.clone()),
                    &mut Greedy,
                    CacheState::empty(&s.network),
                    &mut sink,
                )
                .unwrap();
            sink.slots
                .into_iter()
                .map(|m| (m.requests, m.sbs_served.to_bits(), m.cost.total().to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        // Different request seeds change dispatch but not costs.
        let a = run(5);
        let b = run(6);
        assert!(a.iter().zip(&b).any(|(x, y)| x.0 != y.0));
        assert!(a.iter().zip(&b).all(|(x, y)| x.2 == y.2));
    }

    #[test]
    fn idle_slot_hit_ratio_is_zero() {
        // The SlotMetrics.hit_ratio convention: an idle slot (zero
        // realized requests) reports 0, not NaN.
        let idle = DispatchOutcome::default();
        assert_eq!(idle.requests, 0);
        assert_eq!(idle.hit_ratio(), 0.0);
        let busy = DispatchOutcome {
            requests: 4,
            sbs_served: 1.0,
            spilled: 0.0,
            bs_served: 3.0,
        };
        assert_eq!(busy.hit_ratio(), 0.25);
    }

    #[test]
    fn telemetry_observes_the_run_without_perturbing_it() {
        let s = ScenarioConfig::tiny().build(64).unwrap();
        let model = CostModel::paper();
        let run = |telemetry: Telemetry| {
            let engine = ServeEngine::new(&s.network, &model, ServeConfig::new(3, 17))
                .with_telemetry(telemetry);
            let mut sink = MemorySink::default();
            engine
                .run(
                    &mut TraceSource::new(s.demand.clone()),
                    &mut Greedy,
                    CacheState::empty(&s.network),
                    &mut sink,
                )
                .unwrap();
            sink.slots
                .into_iter()
                .map(|m| (m.requests, m.sbs_served.to_bits(), m.cost.total().to_bits()))
                .collect::<Vec<_>>()
        };
        let plain = run(Telemetry::disabled());
        let tele = Telemetry::enabled();
        let observed = run(tele.clone());
        assert_eq!(plain, observed, "telemetry must not change any slot");
        let horizon = s.demand.horizon() as u64;
        assert_eq!(tele.counter("serve_slots_total").get(), horizon);
        assert_eq!(tele.counter("repair_slots_total").get(), horizon);
        assert_eq!(
            tele.histogram_with("serve_decide_us", "policy", "greedy")
                .snapshot()
                .count,
            horizon
        );
        assert!(tele.counter("serve_requests_total").get() > 0);
    }

    #[test]
    fn ledger_and_ratio_ride_along_without_perturbing() {
        let s = ScenarioConfig::tiny().with_horizon(8).build(66).unwrap();
        let model = CostModel::paper();
        let run = |ledger: bool, ratio: Option<RatioOptions>| {
            let mut config = ServeConfig::new(3, 11);
            config.ledger = ledger;
            config.ratio = ratio;
            let engine = ServeEngine::new(&s.network, &model, config);
            let mut sink = MemorySink::default();
            let report = engine
                .run(
                    &mut TraceSource::new(s.demand.clone()),
                    &mut Greedy,
                    CacheState::empty(&s.network),
                    &mut sink,
                )
                .unwrap();
            (report, sink)
        };
        let opts = RatioOptions {
            block: 4,
            max_iterations: 20,
            ..RatioOptions::default()
        };
        let (plain_report, plain_sink) = run(false, None);
        let (report, sink) = run(true, Some(opts));

        // Attribution and certification are pure observation. Latency
        // summaries are wall-clock and compared with a zeroed stand-in.
        let clock_free = |s: &ServeSummary| {
            let mut s = s.clone();
            s.solve_latency = crate::metrics::LatencySummary {
                mean_us: 0.0,
                p50_us: 0,
                p95_us: 0,
                p99_us: 0,
                max_us: 0,
            };
            s
        };
        assert_eq!(
            clock_free(&plain_report.summary),
            clock_free(&report.summary)
        );
        assert!(plain_report.ratio.is_none());
        for (a, b) in plain_sink.slots.iter().zip(&sink.slots) {
            assert_eq!(a.cost.total().to_bits(), b.cost.total().to_bits());
        }

        // One ledger per slot, reconciling bitwise with the slot cost.
        assert_eq!(sink.ledgers.len(), report.summary.slots);
        for (slot, ledger) in sink.slots.iter().zip(&sink.ledgers) {
            assert_eq!(slot.slot, ledger.slot);
            assert_eq!(ledger.total().to_bits(), slot.cost.total().to_bits());
            assert_eq!(ledger.breakdown(), slot.cost);
        }

        // 8 slots / block of 4 → two ratio records; a real policy's
        // ratio can never drop below 1 against a valid lower bound.
        assert_eq!(sink.ratios.len(), 2);
        let last = report.ratio.expect("tracker was on");
        assert_eq!(last, *sink.ratios.last().unwrap());
        assert_eq!(last.covered_slots, 8);
        if let Some(r) = last.ratio {
            assert!(r >= 1.0 - 1e-9, "ratio={r}");
        }
    }

    #[test]
    fn ratio_report_present_even_before_first_block() {
        let s = ScenarioConfig::tiny().with_horizon(3).build(67).unwrap();
        let model = CostModel::paper();
        let mut config = ServeConfig::new(2, 1);
        config.ratio = Some(RatioOptions {
            block: 16, // longer than the stream: no block ever completes
            max_iterations: 10,
            ..RatioOptions::default()
        });
        let engine = ServeEngine::new(&s.network, &model, config);
        let mut sink = MemorySink::default();
        let report = engine
            .run(
                &mut TraceSource::new(s.demand.clone()),
                &mut Greedy,
                CacheState::empty(&s.network),
                &mut sink,
            )
            .unwrap();
        assert!(sink.ratios.is_empty());
        let reading = report.ratio.expect("tracker was on");
        assert_eq!(reading.blocks, 0);
        assert_eq!(reading.ratio, None);
        assert!(!reading.exceeds_bound);
    }

    /// A sink that records whether the engine asked for a flush.
    #[derive(Debug, Default)]
    struct FlushTrackingSink {
        headers: usize,
        slots: usize,
        flushes: usize,
    }

    impl MetricsSink for FlushTrackingSink {
        fn header(&mut self, _: &crate::metrics::RunHeader) -> Result<(), ServeError> {
            self.headers += 1;
            Ok(())
        }

        fn slot(&mut self, _: &SlotMetrics) -> Result<(), ServeError> {
            self.slots += 1;
            Ok(())
        }

        fn summary(&mut self, _: &crate::metrics::ServeSummary) -> Result<(), ServeError> {
            Ok(())
        }

        fn flush(&mut self) -> Result<(), ServeError> {
            self.flushes += 1;
            Ok(())
        }
    }

    /// Fails after two successful decisions.
    #[derive(Debug)]
    struct FailsAt(usize);

    impl OnlinePolicy for FailsAt {
        fn name(&self) -> &str {
            "fails-at"
        }

        fn decide(
            &mut self,
            t: usize,
            ctx: &PolicyContext<'_>,
        ) -> Result<jocal_online::policy::Action, jocal_core::CoreError> {
            if t >= self.0 {
                return Err(jocal_core::CoreError::infeasible("test", "induced failure"));
            }
            Ok(jocal_online::policy::Action::idle(ctx.network))
        }

        fn reset(&mut self) {}
    }

    #[test]
    fn error_path_flushes_the_sink() {
        let s = ScenarioConfig::tiny().build(65).unwrap();
        let model = CostModel::paper();
        let engine = ServeEngine::new(&s.network, &model, ServeConfig::new(2, 3));
        let mut sink = FlushTrackingSink::default();
        let err = engine.run(
            &mut TraceSource::new(s.demand.clone()),
            &mut FailsAt(2),
            CacheState::empty(&s.network),
            &mut sink,
        );
        assert!(err.is_err());
        assert_eq!(sink.headers, 1, "header precedes the failure");
        assert_eq!(sink.slots, 2, "two slots served before the failure");
        assert_eq!(sink.flushes, 1, "error path must flush buffered records");
    }

    #[test]
    fn shutdown_flag_stops_the_run_with_durable_output() {
        let s = ScenarioConfig::tiny().build(68).unwrap();
        let model = CostModel::paper();
        let engine = ServeEngine::new(&s.network, &model, ServeConfig::new(3, 42));

        /// Raises the shared flag after delivering `limit` slots.
        #[derive(Debug)]
        struct RaisingSource {
            inner: TraceSource,
            delivered: usize,
            limit: usize,
            flag: jocal_core::ShutdownFlag,
        }

        impl crate::source::DemandSource for RaisingSource {
            fn len_hint(&self) -> Option<usize> {
                self.inner.len_hint()
            }

            fn next_slot(
                &mut self,
                out: &mut jocal_sim::demand::DemandTrace,
            ) -> Result<bool, ServeError> {
                if self.delivered >= self.limit {
                    self.flag.request();
                }
                self.delivered += 1;
                self.inner.next_slot(out)
            }
        }

        let flag = jocal_core::ShutdownFlag::new();
        let mut source = RaisingSource {
            inner: TraceSource::new(s.demand.clone()),
            delivered: 0,
            limit: 4,
            flag: flag.clone(),
        };
        let engine = engine.with_shutdown(flag.clone());
        let mut sink = MemorySink::default();
        let report = engine
            .run(
                &mut source,
                &mut Greedy,
                CacheState::empty(&s.network),
                &mut sink,
            )
            .unwrap();
        assert!(flag.is_requested());
        // The run stopped early but cleanly: header, every served
        // slot and the summary all reached the sink.
        assert!(report.summary.slots < s.demand.horizon());
        assert!(sink.header.is_some());
        assert_eq!(sink.slots.len(), report.summary.slots);
        assert!(sink.summary.is_some());
    }

    #[test]
    fn unbounded_source_requires_cap() {
        use jocal_sim::demand::TemporalPattern;
        use jocal_sim::popularity::ZipfMandelbrot;
        use jocal_sim::stream::StreamingDemand;
        let s = ScenarioConfig::tiny().build(63).unwrap();
        let model = CostModel::paper();
        let pop = ZipfMandelbrot::new(s.network.num_contents(), 0.8, 2.0).unwrap();
        let gen = StreamingDemand::new(pop, TemporalPattern::Stationary, 1).unwrap();
        let mut source = crate::source::SyntheticSource::unbounded(gen, s.network.clone());
        let engine = ServeEngine::new(&s.network, &model, ServeConfig::new(2, 1));
        let err = engine.run(
            &mut source,
            &mut Greedy,
            CacheState::empty(&s.network),
            &mut NullSink,
        );
        assert!(err.is_err());
        // With a cap it runs exactly that many slots.
        let mut config = ServeConfig::new(2, 1);
        config.max_slots = Some(7);
        let engine = ServeEngine::new(&s.network, &model, config);
        let mut sink = MemorySink::default();
        let report = engine
            .run(
                &mut source,
                &mut Greedy,
                CacheState::empty(&s.network),
                &mut sink,
            )
            .unwrap();
        assert_eq!(report.summary.slots, 7);
        assert!(report.summary.peak_buffered_slots <= 2);
    }
}
