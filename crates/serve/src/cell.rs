//! The per-cell slot-step core.
//!
//! [`CellCore`] packages everything one serving cell owns — the network
//! topology, cost model, sliding window, request RNG, running totals and
//! resolved telemetry handles — behind a reusable `start → step* →
//! finish` lifecycle. [`crate::engine::ServeEngine`] drives exactly one
//! core to serve the single-cell case; `jocal-cluster` drives `M` of
//! them over shared slots from a worker pool. Both paths execute the
//! same code, which is what makes a 1-cell cluster bit-identical to the
//! single-cell engine.
//!
//! The core deliberately does **not** own the demand source, policy or
//! metrics sink: callers pass them into each call so a borrowing driver
//! (the engine) and an owning driver (a cluster cell) share one
//! implementation without trait-object gymnastics.

use crate::engine::{dispatch_requests, ServeConfig, ServeReport};
use crate::error::ServeError;
use crate::metrics::{
    LatencyHistogram, MetricsSink, RatioRecord, RunHeader, ServeSummary, SlotMetrics,
};
use crate::source::DemandSource;
use crate::window::SlidingWindow;
use jocal_core::accounting::{evaluate_slot_sparse, CostBreakdown};
use jocal_core::ledger::ledger_slot_sparse;
use jocal_core::plan::{CacheState, LoadPlan};
use jocal_core::{CostModel, ShutdownFlag, SlotNonzeros};
use jocal_flightrec::{fold_bits, DemandEntry, FlightRecorder, Frame, RatioFrame, B64};
use jocal_online::observe::RepairMetrics;
use jocal_online::policy::{OnlinePolicy, PolicyContext};
use jocal_online::ratio::{slot_constraint_violations, DualBoundTracker};
use jocal_online::repair::repair_slot;
use jocal_sim::predictor::PredictionWindow as _;
use jocal_sim::requests::sample_slot_rng;
use jocal_sim::topology::Network;
use jocal_sim::{ClassId, ContentId, SbsId};
use jocal_telemetry::{Counter, FieldValue, Gauge, Histogram, Telemetry, Tracer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::Add;
use std::time::Instant;

/// Telemetry handles a cell resolves once at start: all per-slot
/// recording below is lock-free (pure no-op branches when telemetry is
/// disabled).
#[derive(Debug, Default)]
struct CellObs {
    decide_us: Histogram,
    slots_total: Counter,
    requests_total: Counter,
    /// Nonzero `(class, content)` demand coordinates in each served
    /// slot — the size of the sparse cost/ledger sweeps.
    slot_nonzeros: Histogram,
    repair_metrics: RepairMetrics,
    tracer: Tracer,
    watchdog_ratio: Counter,
    watchdog_constraint: Counter,
    /// Latest certified empirical competitive ratio — the level an
    /// SLO like `ratio < 2.618` watches.
    empirical_ratio: Gauge,
}

impl CellObs {
    fn resolve(telemetry: &Telemetry, policy: &str) -> Self {
        CellObs {
            decide_us: telemetry.histogram_with("serve_decide_us", "policy", policy),
            slots_total: telemetry.counter("serve_slots_total"),
            requests_total: telemetry.counter("serve_requests_total"),
            slot_nonzeros: telemetry.histogram("serve_slot_nonzeros"),
            repair_metrics: RepairMetrics::resolve(telemetry),
            tracer: telemetry.tracer(),
            watchdog_ratio: telemetry.counter("serve_watchdog_ratio_total"),
            watchdog_constraint: telemetry.counter("serve_watchdog_constraint_total"),
            empirical_ratio: telemetry.gauge("serve_empirical_ratio"),
        }
    }
}

/// Running per-run aggregates folded from each slot's metrics.
#[derive(Debug, Default)]
struct Totals {
    slots: usize,
    requests: u64,
    sbs_served: f64,
    spilled: f64,
    bs_served: f64,
    cost: CostBreakdown,
    repair_activations: usize,
}

impl Totals {
    fn fold(&mut self, m: &SlotMetrics) {
        self.slots += 1;
        self.requests += m.requests;
        self.sbs_served += m.sbs_served;
        self.spilled += m.spilled;
        self.bs_served += m.bs_served;
        self.cost = self.cost.add(m.cost);
        self.repair_activations += usize::from(m.repair_scaled_sbs > 0);
    }
}

/// One serving cell's complete loop state.
///
/// Owns the network, cost model, sliding window, request RNG, optional
/// optimality-gap tracker and running totals — everything a cell needs
/// between slots. See the module docs for the lifecycle.
#[derive(Debug)]
pub struct CellCore {
    network: Network,
    cost_model: CostModel,
    config: ServeConfig,
    telemetry: Telemetry,
    obs: CellObs,
    header: RunHeader,
    horizon: usize,
    tracker: Option<DualBoundTracker>,
    last_ratio: Option<RatioRecord>,
    shutdown: ShutdownFlag,
    recorder: FlightRecorder,
    window: SlidingWindow,
    rng: StdRng,
    prev_cache: CacheState,
    slot_load: LoadPlan,
    /// Reusable nonzero index over the realized slot, rebuilt in place
    /// each step (`O(nnz)` cost/ledger sweeps instead of `O(N·M·K)`).
    truth_nonzeros: SlotNonzeros,
    histogram: LatencyHistogram,
    totals: Totals,
}

impl CellCore {
    /// Starts a cell run: validates the source/config pairing, emits the
    /// [`RunHeader`] to `sink`, instruments `policy` and initializes all
    /// loop state.
    ///
    /// # Errors
    ///
    /// Rejects an unbounded source without
    /// [`ServeConfig::max_slots`]; propagates sink failures.
    ///
    /// # Panics
    ///
    /// Panics if the configured window is zero.
    #[allow(clippy::too_many_arguments)] // one parameter per engine collaborator
    pub fn start(
        network: &Network,
        cost_model: &CostModel,
        config: ServeConfig,
        telemetry: &Telemetry,
        source: &mut dyn DemandSource,
        policy: &mut dyn OnlinePolicy,
        initial: CacheState,
        sink: &mut dyn MetricsSink,
    ) -> Result<Self, ServeError> {
        assert!(config.window >= 1, "serve window must be at least 1 slot");
        let total_hint = source.len_hint();
        if total_hint.is_none() && config.max_slots.is_none() {
            return Err(ServeError::config(
                "max_slots",
                "an unbounded source needs an explicit slot limit",
            ));
        }
        // The policies' planning horizon `T`: for a finite source this
        // is the true stream length — matching what the batch runner
        // derives from `truth.horizon()`, which is what makes the two
        // paths decide identically. A slot cap does not shrink it (the
        // batch runner evaluated prefixes the same way).
        let horizon = total_hint.unwrap_or(usize::MAX);

        let header = RunHeader {
            policy: policy.name().to_string(),
            seed: config.seed,
            noise_seed: config.noise.seed(),
            eta: config.noise.eta(),
            window: config.window,
            horizon: total_hint,
        };
        sink.header(&header)?;

        // Instrument before the loop: the policy resolves its handles
        // once, and all per-slot recording is lock-free.
        policy.instrument(telemetry);
        let obs = CellObs::resolve(telemetry, policy.name());
        let tracker = config
            .ratio
            .map(|opts| DualBoundTracker::new(network, cost_model, opts));

        Ok(CellCore {
            network: network.clone(),
            cost_model: *cost_model,
            config,
            telemetry: telemetry.clone(),
            obs,
            header,
            horizon,
            tracker,
            last_ratio: None,
            shutdown: ShutdownFlag::default(),
            recorder: FlightRecorder::disabled(),
            window: SlidingWindow::new(network),
            rng: StdRng::seed_from_u64(config.seed),
            prev_cache: initial,
            slot_load: LoadPlan::zeros(network, 1),
            truth_nonzeros: SlotNonzeros::default(),
            histogram: LatencyHistogram::default(),
            totals: Totals::default(),
        })
    }

    /// Slots served so far.
    #[inline]
    #[must_use]
    pub fn slots(&self) -> usize {
        self.totals.slots
    }

    /// Attaches a cooperative stop flag, checked once per
    /// [`CellCore::step`]: when raised the step reports end-of-run
    /// (`Ok(false)`) so the driver reaches [`CellCore::finish`] and the
    /// sink's summary/flush path runs — an interrupted run still leaves
    /// durable, well-formed output.
    pub fn set_shutdown(&mut self, shutdown: ShutdownFlag) {
        self.shutdown = shutdown;
    }

    /// Attaches a flight recorder. Each subsequent [`CellCore::step`]
    /// emits one capture [`Frame`] (and trigger records when a
    /// watchdog fires); the default disabled recorder costs one
    /// `None` branch per slot and allocates nothing.
    pub fn set_recorder(&mut self, recorder: FlightRecorder) {
        self.recorder = recorder;
    }

    /// Serves one slot: tops up the window, decides, repairs, charges
    /// costs, dispatches realized requests and emits one
    /// [`SlotMetrics`] (plus optional ledger/ratio records) to `sink`.
    ///
    /// Returns `Ok(false)` when the run is over — the slot cap was
    /// reached or the source is exhausted — without touching `sink`.
    ///
    /// # Errors
    ///
    /// Propagates source, policy and sink failures.
    pub fn step(
        &mut self,
        source: &mut dyn DemandSource,
        policy: &mut dyn OnlinePolicy,
        sink: &mut dyn MetricsSink,
    ) -> Result<bool, ServeError> {
        if self.shutdown.is_requested() {
            return Ok(false);
        }
        let t = self.window.start();
        if self.config.max_slots.is_some_and(|cap| t >= cap) {
            return Ok(false);
        }
        self.window.fill(self.config.window, source)?;
        if self.window.front().is_none() {
            return Ok(false);
        }

        // --- Decide -------------------------------------------------
        let slot_trace = self.obs.tracer.start_with("slot", "t", t as u64);
        let started = Instant::now();
        let decide_trace = self.obs.tracer.start("decide");
        let action = {
            let predictor = self.window.predictor(self.config.noise);
            let ctx = PolicyContext {
                network: &self.network,
                cost_model: &self.cost_model,
                predictor: &predictor,
                current_cache: &self.prev_cache,
                horizon: self.horizon,
            };
            policy.decide(t, &ctx)?
        };
        self.obs.tracer.finish(decide_trace);
        let solve_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);

        // --- Repair against the realized slot ------------------------
        let truth = self.window.front().expect("checked non-empty above");
        for (n, sbs) in self.network.iter_sbs() {
            for m in 0..sbs.num_classes() {
                for k in 0..self.network.num_contents() {
                    let y = action.load.y(0, n, ClassId(m), ContentId(k));
                    self.slot_load.set_y(0, n, ClassId(m), ContentId(k), y);
                }
            }
        }
        let repair_trace = self.obs.tracer.start("repair");
        let repair = repair_slot(
            &self.network,
            truth,
            0,
            &action.cache,
            &mut self.slot_load,
            0,
            policy.name(),
            t,
        )?;
        self.obs.tracer.finish(repair_trace);

        // --- Charge realized costs -----------------------------------
        // Sparse sweep over the realized slot's nonzero coordinates;
        // bit-identical to the dense evaluation (see jocal_core::sparse).
        self.truth_nonzeros.rebuild_from(truth);
        self.obs
            .slot_nonzeros
            .observe(self.truth_nonzeros.total_nonzeros() as u64);
        let cost = evaluate_slot_sparse(
            &self.network,
            &self.cost_model,
            &self.truth_nonzeros,
            &self.prev_cache,
            &action.cache,
            &self.slot_load,
            0,
        );

        // --- Dispatch realized requests ------------------------------
        let counts = sample_slot_rng(&mut self.rng, truth, 0);
        let dispatch = dispatch_requests(&self.network, &counts, &self.slot_load);

        let metrics = SlotMetrics {
            slot: t,
            requests: dispatch.requests,
            sbs_served: dispatch.sbs_served,
            spilled: dispatch.spilled,
            bs_served: dispatch.bs_served,
            hit_ratio: dispatch.hit_ratio(),
            cost,
            repair_scaled_sbs: repair.bandwidth_scaled,
            solve_us,
            buffered_slots: self.window.buffered(),
        };
        sink.slot(&metrics)?;

        // --- Attribute (ledger) and certify (ratio tracker) ----------
        // Both read executed state only; neither can perturb a
        // decision bit.
        if self.config.ledger {
            let ledger = ledger_slot_sparse(
                &self.network,
                &self.cost_model,
                &self.truth_nonzeros,
                &self.prev_cache,
                &action.cache,
                &self.slot_load,
                0,
                t,
            );
            debug_assert_eq!(
                ledger.breakdown(),
                cost,
                "ledger must reconcile bitwise with the evaluated slot"
            );
            sink.ledger(&ledger)?;
        }
        let mut slot_ratio: Option<RatioRecord> = None;
        if let Some(tracker) = self.tracker.as_mut() {
            let violations = slot_constraint_violations(
                &self.network,
                truth,
                0,
                &action.cache,
                &self.slot_load,
                0,
            );
            if !violations.is_empty() {
                self.obs.watchdog_constraint.incr();
                self.telemetry.event(
                    "serve_watchdog_constraint",
                    &[
                        ("slot", FieldValue::U64(t as u64)),
                        ("families", FieldValue::U64(violations.len() as u64)),
                    ],
                );
                self.recorder.trigger(
                    "constraint_violation",
                    Some(t as u64),
                    format_args!("{} constraint families violated", violations.len()),
                );
            }
            let block_trace = self.obs.tracer.start("ratio_block");
            let sample = tracker.observe_slot(truth, 0, cost.total())?;
            self.obs.tracer.finish(block_trace);
            if let Some(sample) = sample {
                let record = RatioRecord {
                    slot: t,
                    blocks: sample.blocks,
                    covered_slots: sample.slots,
                    realized_cost: sample.realized_cost,
                    lower_bound: sample.lower_bound,
                    ratio: sample.ratio,
                    bound: tracker.options().bound,
                    exceeds_bound: tracker.exceeds_bound(),
                };
                if record.exceeds_bound {
                    self.obs.watchdog_ratio.incr();
                    self.telemetry.event(
                        "serve_watchdog_ratio",
                        &[
                            ("slot", FieldValue::U64(t as u64)),
                            (
                                "ratio",
                                FieldValue::F64(record.ratio.unwrap_or(f64::INFINITY)),
                            ),
                            ("bound", FieldValue::F64(record.bound)),
                        ],
                    );
                    self.recorder.trigger(
                        "ratio_watchdog",
                        Some(t as u64),
                        format_args!(
                            "empirical ratio {} exceeds bound {}",
                            record.ratio.unwrap_or(f64::INFINITY),
                            record.bound
                        ),
                    );
                }
                if let Some(ratio) = record.ratio {
                    self.obs.empirical_ratio.set(ratio);
                }
                sink.ratio(&record)?;
                self.last_ratio = Some(record);
                slot_ratio = Some(record);
            }
        }

        self.histogram.observe(solve_us);
        self.totals.fold(&metrics);
        self.obs.decide_us.observe(solve_us);
        self.obs.slots_total.incr();
        self.obs.requests_total.add(dispatch.requests);
        self.obs.repair_metrics.record(&repair);

        // Disabled recorders skip the closure entirely; frames only
        // read executed state, so recording cannot perturb a decision.
        self.recorder
            .record_with(|| self.build_frame(&metrics, &action.cache, slot_ratio.as_ref()));

        self.prev_cache = action.cache;
        self.window.advance();
        self.obs.tracer.finish(slot_trace);
        Ok(true)
    }

    /// Assembles the capture frame for the slot just served, reading
    /// only post-decision state (the realized nonzeros, repaired load,
    /// cache vector, cost and dispatch results).
    fn build_frame(
        &self,
        metrics: &SlotMetrics,
        cache: &CacheState,
        ratio: Option<&RatioRecord>,
    ) -> Frame {
        let num_sbs = self.network.num_sbs();
        let num_contents = self.network.num_contents();
        let mut demand = Vec::with_capacity(num_sbs);
        let mut load = Vec::with_capacity(num_sbs);
        let mut cache_ids = Vec::with_capacity(num_sbs);
        for n in 0..num_sbs {
            let id = SbsId(n);
            let entries = self.truth_nonzeros.slot(0, id);
            demand.push(
                entries
                    .iter()
                    .map(|e| DemandEntry {
                        idx: e.idx,
                        lambda: B64(e.lambda),
                    })
                    .collect::<Vec<_>>(),
            );
            load.push(
                entries
                    .iter()
                    .map(|e| {
                        let m = ClassId(e.idx as usize / num_contents);
                        let k = ContentId(e.idx as usize % num_contents);
                        B64(self.slot_load.y(0, id, m, k))
                    })
                    .collect::<Vec<_>>(),
            );
            cache_ids.push(
                cache
                    .cached_items(id)
                    .iter()
                    .map(|c| c.0 as u32)
                    .collect::<Vec<_>>(),
            );
        }
        // Digest the canonical window-length prediction at this slot.
        // The noise model is a stateless hash of (seed, slot, coords),
        // so replay recomputes the identical digest from the rebuilt
        // demand stream — any predictor-input drift shows up here.
        let pred = self
            .window
            .predictor(self.config.noise)
            .predict(metrics.slot, self.config.window);
        let mut digest = jocal_flightrec::DIGEST_SEED;
        for t_local in 0..pred.horizon() {
            for n in 0..num_sbs {
                for &v in pred.sbs_slot_slice(t_local, SbsId(n)) {
                    digest = fold_bits(digest, v.to_bits());
                }
            }
        }
        Frame {
            slot: metrics.slot as u64,
            tag: None,
            demand,
            pred_digest: format!("{digest:016x}"),
            cache: cache_ids,
            load,
            cost: jocal_flightrec::CostFrame {
                bs_operating: B64(metrics.cost.bs_operating),
                sbs_operating: B64(metrics.cost.sbs_operating),
                replacement: B64(metrics.cost.replacement),
                replacement_count: metrics.cost.replacement_count as u64,
            },
            requests: metrics.requests,
            sbs_served: B64(metrics.sbs_served),
            spilled: B64(metrics.spilled),
            bs_served: B64(metrics.bs_served),
            repair_scaled_sbs: metrics.repair_scaled_sbs as u64,
            solve_us: metrics.solve_us,
            ratio: ratio.map(|r| RatioFrame {
                blocks: r.blocks as u64,
                covered_slots: r.covered_slots as u64,
                realized_cost: B64(r.realized_cost),
                lower_bound: B64(r.lower_bound),
                ratio: r.ratio.map(B64),
                exceeds_bound: r.exceeds_bound,
            }),
        }
    }

    /// Finishes the run: emits the [`ServeSummary`] to `sink` and
    /// returns the report (with the final optimality-gap reading when
    /// the tracker was on).
    ///
    /// # Errors
    ///
    /// Propagates sink failures.
    pub fn finish(self, sink: &mut dyn MetricsSink) -> Result<ServeReport, ServeError> {
        let totals = &self.totals;
        let summary = ServeSummary {
            header: self.header.clone(),
            slots: totals.slots,
            requests: totals.requests,
            sbs_served: totals.sbs_served,
            spilled: totals.spilled,
            bs_served: totals.bs_served,
            hit_ratio: if totals.requests == 0 {
                0.0
            } else {
                totals.sbs_served / totals.requests as f64
            },
            cost: totals.cost,
            repair_activations: totals.repair_activations,
            peak_buffered_slots: self.window.peak_buffered(),
            solve_latency: self.histogram.summarize(),
        };
        sink.summary(&summary)?;
        // With the tracker on but no block completed yet, report a
        // zero-block reading rather than nothing.
        let ratio = self.tracker.map(|tr| {
            self.last_ratio.unwrap_or_else(|| {
                let sample = tr.sample();
                RatioRecord {
                    slot: summary.slots.saturating_sub(1),
                    blocks: sample.blocks,
                    covered_slots: sample.slots,
                    realized_cost: sample.realized_cost,
                    lower_bound: sample.lower_bound,
                    ratio: sample.ratio,
                    bound: tr.options().bound,
                    exceeds_bound: tr.exceeds_bound(),
                }
            })
        });
        Ok(ServeReport { summary, ratio })
    }
}
