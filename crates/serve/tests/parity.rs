//! Streaming/batch parity: the serving engine on a buffered finite
//! trace must produce **bit-identical** per-slot cost trajectories to
//! the batch runner, for every online policy of the paper, at every
//! thread count.
//!
//! This is the contract that lets long-horizon streaming results be
//! compared against short-horizon batch experiments: same seeds, same
//! numbers, down to the last ulp.

use jocal_core::primal_dual::PrimalDualOptions;
use jocal_core::{CacheState, CostModel, Parallelism};
use jocal_online::afhc::afhc_policy;
use jocal_online::chc::ChcPolicy;
use jocal_online::policy::OnlinePolicy;
use jocal_online::ratio::RatioOptions;
use jocal_online::rhc::RhcPolicy;
use jocal_online::rounding::RoundingPolicy;
use jocal_online::runner::run_policy;
use jocal_serve::engine::{ServeConfig, ServeEngine};
use jocal_serve::metrics::MemorySink;
use jocal_serve::source::TraceSource;
use jocal_sim::predictor::{NoiseModel, NoisyPredictor};
use jocal_sim::scenario::ScenarioConfig;
use jocal_telemetry::Telemetry;

const ETA: f64 = 0.15;
const NOISE_SEED: u64 = 9001;
const WINDOW: usize = 3;

fn policies(parallelism: Parallelism) -> Vec<Box<dyn OnlinePolicy + Send>> {
    let options = PrimalDualOptions {
        parallelism,
        ..PrimalDualOptions::online()
    };
    vec![
        Box::new(RhcPolicy::new(WINDOW, options)),
        Box::new(afhc_policy(WINDOW, RoundingPolicy::default(), options)),
        Box::new(ChcPolicy::new(
            WINDOW,
            2,
            RoundingPolicy::default(),
            options,
        )),
    ]
}

#[test]
fn streaming_matches_batch_bitwise_for_all_policies_and_thread_counts() {
    let scenario = ScenarioConfig::tiny().build(77).unwrap();
    let model = CostModel::paper();
    let noise = NoiseModel::new(ETA, NOISE_SEED);

    for parallelism in [Parallelism::Threads(1), Parallelism::Threads(4)] {
        for mut policy in policies(parallelism) {
            let name = policy.name().to_string();

            // --- Batch: full-horizon runner -----------------------------
            let predictor = NoisyPredictor::new(scenario.demand.clone(), ETA, NOISE_SEED);
            let batch = run_policy(
                &scenario.network,
                &model,
                &predictor,
                policy.as_mut(),
                CacheState::empty(&scenario.network),
            )
            .unwrap_or_else(|e| panic!("batch {name} failed: {e}"));

            // --- Streaming: O(w) engine over the same trace -------------
            policy.reset();
            let mut config = ServeConfig::new(WINDOW, 42);
            config.noise = noise;
            let engine = ServeEngine::new(&scenario.network, &model, config);
            let mut sink = MemorySink::default();
            engine
                .run(
                    &mut TraceSource::new(scenario.demand.clone()),
                    policy.as_mut(),
                    CacheState::empty(&scenario.network),
                    &mut sink,
                )
                .unwrap_or_else(|e| panic!("streaming {name} failed: {e}"));

            assert_eq!(
                sink.slots.len(),
                batch.per_slot.len(),
                "{name} {parallelism:?}: slot counts differ"
            );
            for (t, (streamed, batched)) in sink.slots.iter().zip(batch.per_slot.iter()).enumerate()
            {
                let s = &streamed.cost;
                assert_eq!(
                    s.bs_operating.to_bits(),
                    batched.bs_operating.to_bits(),
                    "{name} {parallelism:?} t={t}: bs_operating {} vs {}",
                    s.bs_operating,
                    batched.bs_operating
                );
                assert_eq!(
                    s.sbs_operating.to_bits(),
                    batched.sbs_operating.to_bits(),
                    "{name} {parallelism:?} t={t}: sbs_operating {} vs {}",
                    s.sbs_operating,
                    batched.sbs_operating
                );
                assert_eq!(
                    s.replacement.to_bits(),
                    batched.replacement.to_bits(),
                    "{name} {parallelism:?} t={t}: replacement {} vs {}",
                    s.replacement,
                    batched.replacement
                );
                assert_eq!(
                    s.replacement_count, batched.replacement_count,
                    "{name} {parallelism:?} t={t}: replacement_count"
                );
            }
            // The memory bound that makes streaming worth having.
            let summary = sink.summary.unwrap();
            assert!(
                summary.peak_buffered_slots <= WINDOW,
                "{name}: buffered {} > w={WINDOW}",
                summary.peak_buffered_slots
            );
        }
    }
}

#[test]
fn telemetry_on_and_off_runs_are_bit_identical() {
    // Enabling telemetry must not flip a single decision bit: same
    // cache states, same load plans, same costs — for every paper
    // policy at every thread count. This is the property that makes it
    // safe to leave `--telemetry-out` on in production runs.
    let scenario = ScenarioConfig::tiny().build(77).unwrap();
    let model = CostModel::paper();

    for parallelism in [Parallelism::Threads(1), Parallelism::Threads(4)] {
        let names: Vec<String> = policies(parallelism)
            .iter()
            .map(|p| p.name().to_string())
            .collect();
        for (i, name) in names.iter().enumerate() {
            let run = |telemetry: Telemetry| {
                let mut policy = policies(parallelism).remove(i);
                let mut config = ServeConfig::new(WINDOW, 42);
                config.noise = NoiseModel::new(ETA, NOISE_SEED);
                let engine =
                    ServeEngine::new(&scenario.network, &model, config).with_telemetry(telemetry);
                let mut sink = MemorySink::default();
                engine
                    .run(
                        &mut TraceSource::new(scenario.demand.clone()),
                        policy.as_mut(),
                        CacheState::empty(&scenario.network),
                        &mut sink,
                    )
                    .unwrap_or_else(|e| panic!("{name} {parallelism:?} failed: {e}"));
                sink.slots
                    .into_iter()
                    .map(|m| {
                        (
                            m.requests,
                            m.sbs_served.to_bits(),
                            m.bs_served.to_bits(),
                            m.cost.total().to_bits(),
                            m.repair_scaled_sbs,
                        )
                    })
                    .collect::<Vec<_>>()
            };
            let off = run(Telemetry::disabled());
            let tele = Telemetry::enabled();
            let on = run(tele.clone());
            assert_eq!(off, on, "{name} {parallelism:?}: telemetry changed the run");
            // ... and the enabled run actually observed the policy.
            assert!(
                tele.counter_with("window_solves_total", "policy", name)
                    .get()
                    >= 1,
                "{name} {parallelism:?}: no window solves recorded"
            );
            assert!(
                tele.counter("pd_solves_total").get() >= 1,
                "{name} {parallelism:?}: inner solver not instrumented"
            );
        }
    }
}

#[test]
fn trace_ledger_and_ratio_runs_are_bit_identical_to_plain_runs() {
    // The full observability stack — causal tracing, the per-slot cost
    // ledger and the optimality-gap tracker — must also leave every
    // decision bit untouched, for every paper policy at every thread
    // count. The tracker runs its own Algorithm 1 block solves, so this
    // additionally proves those solves never leak state into the
    // policies.
    let scenario = ScenarioConfig::tiny().build(77).unwrap();
    let model = CostModel::paper();
    let ratio = RatioOptions {
        block: 3,
        max_iterations: 15,
        ..RatioOptions::default()
    };

    for parallelism in [Parallelism::Threads(1), Parallelism::Threads(4)] {
        let names: Vec<String> = policies(parallelism)
            .iter()
            .map(|p| p.name().to_string())
            .collect();
        for (i, name) in names.iter().enumerate() {
            let run = |telemetry: Telemetry, ledger: bool, ratio: Option<RatioOptions>| {
                let mut policy = policies(parallelism).remove(i);
                let mut config = ServeConfig::new(WINDOW, 42);
                config.noise = NoiseModel::new(ETA, NOISE_SEED);
                config.ledger = ledger;
                config.ratio = ratio;
                let engine =
                    ServeEngine::new(&scenario.network, &model, config).with_telemetry(telemetry);
                let mut sink = MemorySink::default();
                engine
                    .run(
                        &mut TraceSource::new(scenario.demand.clone()),
                        policy.as_mut(),
                        CacheState::empty(&scenario.network),
                        &mut sink,
                    )
                    .unwrap_or_else(|e| panic!("{name} {parallelism:?} failed: {e}"));
                sink
            };
            let plain = run(Telemetry::disabled(), false, None);
            let tele = Telemetry::traced();
            let full = run(tele.clone(), true, Some(ratio));

            let key = |sink: &MemorySink| {
                sink.slots
                    .iter()
                    .map(|m| {
                        (
                            m.requests,
                            m.sbs_served.to_bits(),
                            m.bs_served.to_bits(),
                            m.cost.total().to_bits(),
                            m.repair_scaled_sbs,
                        )
                    })
                    .collect::<Vec<_>>()
            };
            assert_eq!(
                key(&plain),
                key(&full),
                "{name} {parallelism:?}: observability changed the run"
            );

            // The fully observed run actually produced its artifacts.
            assert_eq!(full.ledgers.len(), full.slots.len());
            for (slot, ledger) in full.slots.iter().zip(&full.ledgers) {
                assert_eq!(
                    ledger.total().to_bits(),
                    slot.cost.total().to_bits(),
                    "{name} {parallelism:?} t={}: ledger drifted",
                    slot.slot
                );
            }
            assert!(
                !full.ratios.is_empty(),
                "{name} {parallelism:?}: no dual-bound block completed"
            );
            let tracer = tele.tracer();
            assert!(tracer.span_count() > 0, "{name}: no spans recorded");
            assert_eq!(
                tracer.malformed_spans(),
                0,
                "{name} {parallelism:?}: malformed spans"
            );
            assert_eq!(
                full.slots.len() as u64,
                tracer.spans().iter().filter(|s| s.name == "slot").count() as u64,
                "{name} {parallelism:?}: one slot span per served slot"
            );
        }
    }
}

#[test]
fn thread_counts_agree_with_each_other() {
    // Redundant with PR 1's determinism guarantee plus the parity test
    // above, but cheap and directly actionable when it fires: the
    // streaming trajectory itself must not depend on the thread count.
    let scenario = ScenarioConfig::tiny().build(78).unwrap();
    let model = CostModel::paper();
    let mut trajectories = Vec::new();
    for parallelism in [Parallelism::Threads(1), Parallelism::Threads(4)] {
        let options = PrimalDualOptions {
            parallelism,
            ..PrimalDualOptions::online()
        };
        let mut policy = RhcPolicy::new(WINDOW, options);
        let mut config = ServeConfig::new(WINDOW, 42);
        config.noise = NoiseModel::new(ETA, NOISE_SEED);
        let engine = ServeEngine::new(&scenario.network, &model, config);
        let mut sink = MemorySink::default();
        engine
            .run(
                &mut TraceSource::new(scenario.demand.clone()),
                &mut policy,
                CacheState::empty(&scenario.network),
                &mut sink,
            )
            .unwrap();
        trajectories.push(
            sink.slots
                .iter()
                .map(|m| m.cost.total().to_bits())
                .collect::<Vec<_>>(),
        );
    }
    assert_eq!(trajectories[0], trajectories[1]);
}

#[test]
fn one_cell_cluster_is_bit_identical_to_the_serve_engine() {
    // The cluster runtime's contract: driving a single cell through
    // `jocal_cluster::ClusterEngine` reproduces the single-cell
    // `ServeEngine` byte stream exactly — headers, slots, ledgers,
    // ratio records and summary — for every paper policy at every
    // solver thread count. Wall-clock fields (`solve_us`, the latency
    // summary) are the only exclusions: they are measured, not decided.
    use jocal_cluster::{Cell, ClusterConfig, ClusterEngine};
    use jocal_serve::metrics::SharedMemorySink;

    let scenario = ScenarioConfig::tiny().build(77).unwrap();
    let model = CostModel::paper();
    let ratio = RatioOptions {
        block: 3,
        max_iterations: 15,
        ..RatioOptions::default()
    };
    let slot_key = |sink: &MemorySink| {
        sink.slots
            .iter()
            .map(|m| {
                (
                    m.slot,
                    m.requests,
                    m.sbs_served.to_bits(),
                    m.spilled.to_bits(),
                    m.bs_served.to_bits(),
                    m.hit_ratio.to_bits(),
                    m.cost.total().to_bits(),
                    m.repair_scaled_sbs,
                    m.buffered_slots,
                )
            })
            .collect::<Vec<_>>()
    };

    for parallelism in [Parallelism::Threads(1), Parallelism::Threads(4)] {
        let count = policies(parallelism).len();
        for i in 0..count {
            let mut config = ServeConfig::new(WINDOW, 42);
            config.noise = NoiseModel::new(ETA, NOISE_SEED);
            config.ledger = true;
            config.ratio = Some(ratio);

            // --- Single-cell engine ---------------------------------
            let mut policy = policies(parallelism).remove(i);
            let name = policy.name().to_string();
            let engine = ServeEngine::new(&scenario.network, &model, config);
            let mut single_sink = MemorySink::default();
            let single = engine
                .run(
                    &mut TraceSource::new(scenario.demand.clone()),
                    policy.as_mut(),
                    CacheState::empty(&scenario.network),
                    &mut single_sink,
                )
                .unwrap_or_else(|e| panic!("serve {name} {parallelism:?} failed: {e}"));

            // --- 1-cell cluster -------------------------------------
            let shared = SharedMemorySink::new();
            let cell = Cell::new(
                scenario.network.clone(),
                model,
                config,
                Box::new(TraceSource::new(scenario.demand.clone())),
                policies(parallelism).remove(i),
            )
            .with_sink(Box::new(shared.clone()));
            let cluster = ClusterEngine::new(ClusterConfig::new(1))
                .run(vec![cell])
                .unwrap_or_else(|e| panic!("cluster {name} {parallelism:?} failed: {e}"));
            let cluster_sink = shared.snapshot();

            assert_eq!(
                cluster_sink.header, single_sink.header,
                "{name} {parallelism:?}: headers differ"
            );
            assert_eq!(
                slot_key(&cluster_sink),
                slot_key(&single_sink),
                "{name} {parallelism:?}: slot streams differ"
            );
            assert_eq!(
                cluster_sink.ledgers, single_sink.ledgers,
                "{name} {parallelism:?}: ledger streams differ"
            );
            assert_eq!(
                cluster_sink.ratios, single_sink.ratios,
                "{name} {parallelism:?}: ratio streams differ"
            );

            let cs = &cluster.cells[0].report.summary;
            let ss = &single.summary;
            assert_eq!(cs.slots, ss.slots, "{name} {parallelism:?}");
            assert_eq!(cs.requests, ss.requests, "{name} {parallelism:?}");
            assert_eq!(
                cs.sbs_served.to_bits(),
                ss.sbs_served.to_bits(),
                "{name} {parallelism:?}"
            );
            assert_eq!(
                cs.hit_ratio.to_bits(),
                ss.hit_ratio.to_bits(),
                "{name} {parallelism:?}"
            );
            assert_eq!(
                cs.cost.total().to_bits(),
                ss.cost.total().to_bits(),
                "{name} {parallelism:?}"
            );
            assert_eq!(
                cs.repair_activations, ss.repair_activations,
                "{name} {parallelism:?}"
            );
            assert_eq!(
                cluster.cells[0].report.ratio, single.ratio,
                "{name} {parallelism:?}: final ratio readings differ"
            );
        }
    }
}
