//! Property-based tests for the optimization substrate.

use jocal_optim::linalg::Matrix;
use jocal_optim::mcmf::{FlowGoal, FlowNetwork};
use jocal_optim::pgd::{minimize, PgdOptions};
use jocal_optim::projection::project_box_budget;
use jocal_optim::simplex::{LinearProgram, Sense};
use proptest::prelude::*;

fn small_vec(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-5.0..5.0_f64, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The projection onto box ∩ budget is feasible and no farther from the
    /// input than any sampled feasible point.
    #[test]
    fn projection_is_feasible_and_closest(
        point in small_vec(6),
        weights in prop::collection::vec(0.0..3.0_f64, 6),
        budget in 0.5..10.0_f64,
        candidate_seed in small_vec(6),
    ) {
        let lo = vec![0.0; 6];
        let hi = vec![1.0; 6];
        let p = project_box_budget(&point, &lo, &hi, &weights, budget).unwrap();
        // Feasibility.
        let used: f64 = p.iter().zip(&weights).map(|(v, w)| v * w).sum();
        prop_assert!(used <= budget + 1e-6);
        for &v in &p {
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v));
        }
        // Build a feasible candidate by clamping + scaling the seed.
        let mut cand: Vec<f64> = candidate_seed.iter().map(|v| v.clamp(0.0, 1.0)).collect();
        let cand_used: f64 = cand.iter().zip(&weights).map(|(v, w)| v * w).sum();
        if cand_used > budget {
            let scale = budget / cand_used;
            for v in cand.iter_mut() { *v *= scale; }
        }
        let d_proj: f64 = p.iter().zip(&point).map(|(a, b)| (a - b).powi(2)).sum();
        let d_cand: f64 = cand.iter().zip(&point).map(|(a, b)| (a - b).powi(2)).sum();
        prop_assert!(d_proj <= d_cand + 1e-6);
    }

    /// Projection is idempotent.
    #[test]
    fn projection_is_idempotent(
        point in small_vec(5),
        weights in prop::collection::vec(0.0..2.0_f64, 5),
        budget in 0.5..8.0_f64,
    ) {
        let lo = vec![0.0; 5];
        let hi = vec![1.0; 5];
        let p1 = project_box_budget(&point, &lo, &hi, &weights, budget).unwrap();
        let p2 = project_box_budget(&p1, &lo, &hi, &weights, budget).unwrap();
        for (a, b) in p1.iter().zip(&p2) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    /// LU solves random well-conditioned systems to high accuracy.
    #[test]
    fn lu_solves_random_systems(
        entries in prop::collection::vec(-2.0..2.0_f64, 16),
        rhs in prop::collection::vec(-3.0..3.0_f64, 4),
    ) {
        let mut a = Matrix::from_rows(4, 4, entries).unwrap();
        for i in 0..4 { a[(i, i)] += 8.0; }
        let lu = a.lu().unwrap();
        let x = lu.solve(&rhs).unwrap();
        let ax = a.matvec(&x);
        for (l, r) in ax.iter().zip(&rhs) {
            prop_assert!((l - r).abs() < 1e-8);
        }
    }

    /// The simplex optimum is feasible and beats random feasible samples.
    #[test]
    fn simplex_beats_sampled_feasible_points(
        c in small_vec(4),
        rhs in prop::collection::vec(1.0..6.0_f64, 3),
        rows in prop::collection::vec(prop::collection::vec(0.0..2.0_f64, 4), 3),
        sample in prop::collection::vec(0.0..1.0_f64, 4),
    ) {
        let mut lp = LinearProgram::new(4, Sense::Minimize);
        lp.set_objective(c.clone());
        for j in 0..4 { lp.set_bounds(j, 0.0, 1.0); }
        for (row, b) in rows.iter().zip(&rhs) {
            lp.add_le_constraint(row.iter().cloned().enumerate().collect(), *b);
        }
        let sol = lp.solve().unwrap();
        // Feasibility of the reported optimum.
        for (row, b) in rows.iter().zip(&rhs) {
            let lhs: f64 = row.iter().zip(&sol.x).map(|(a, x)| a * x).sum();
            prop_assert!(lhs <= b + 1e-6);
        }
        for &x in &sol.x {
            prop_assert!((-1e-7..=1.0 + 1e-7).contains(&x));
        }
        // Scale the sample until it is feasible, then compare objectives.
        let mut cand = sample.clone();
        for (row, b) in rows.iter().zip(&rhs) {
            let lhs: f64 = row.iter().zip(&cand).map(|(a, x)| a * x).sum();
            if lhs > *b {
                let shrink = *b / lhs;
                for v in cand.iter_mut() { *v *= shrink; }
            }
        }
        let obj_cand: f64 = c.iter().zip(&cand).map(|(ci, xi)| ci * xi).sum();
        let obj_opt: f64 = c.iter().zip(&sol.x).map(|(ci, xi)| ci * xi).sum();
        prop_assert!(obj_opt <= obj_cand + 1e-6);
        prop_assert!((obj_opt - sol.objective).abs() < 1e-6);
    }

    /// PGD on a separable quadratic over a box matches the closed form.
    #[test]
    fn pgd_matches_closed_form_quadratic(
        target in small_vec(5),
        scale in prop::collection::vec(0.5..4.0_f64, 5),
    ) {
        let t = target.clone();
        let s = scale.clone();
        let r = minimize(
            move |x| x.iter().zip(&t).zip(&s)
                .map(|((xi, ti), si)| si * (xi - ti).powi(2)).sum(),
            {
                let t = target.clone();
                let s = scale.clone();
                move |x, g| {
                    for i in 0..x.len() {
                        g[i] = 2.0 * s[i] * (x[i] - t[i]);
                    }
                }
            },
            |x| for v in x.iter_mut() { *v = v.clamp(0.0, 1.0); },
            vec![0.5; 5],
            PgdOptions::default(),
        ).unwrap();
        for (xi, ti) in r.x.iter().zip(&target) {
            let expect = ti.clamp(0.0, 1.0);
            prop_assert!((xi - expect).abs() < 1e-5, "{xi} vs {expect}");
        }
    }

    /// Min-cost flow cost is convex and non-decreasing in marginal cost as
    /// the flow target grows (successive shortest paths property).
    #[test]
    fn mcmf_marginal_costs_nondecreasing(
        costs in prop::collection::vec(0.0..10.0_f64, 6),
    ) {
        // Two parallel 3-arc chains source→mid→sink with unit capacities.
        let mut total_costs = Vec::new();
        for target in 1..=3_i64 {
            let mut net = FlowNetwork::new(2);
            for chunk in costs.chunks(2) {
                // Each pair of costs forms one unit-capacity arc 0→1 whose
                // cost is the pair sum.
                net.add_edge(0, 1, 1, chunk.iter().sum()).unwrap();
            }
            let r = net.solve(0, 1, FlowGoal::Exact(target)).unwrap();
            total_costs.push(r.cost);
        }
        let m1 = total_costs[0];
        let m2 = total_costs[1] - total_costs[0];
        let m3 = total_costs[2] - total_costs[1];
        prop_assert!(m1 <= m2 + 1e-9);
        prop_assert!(m2 <= m3 + 1e-9);
    }

    /// Exact-flow cost from the flow solver matches an LP transshipment
    /// formulation solved by simplex on tiny random bipartite networks.
    #[test]
    fn mcmf_agrees_with_simplex_on_bipartite(
        costs in prop::collection::vec(0.0..5.0_f64, 4),
        caps in prop::collection::vec(1..3_i64, 4),
    ) {
        // Nodes: 0 = source, 1..3 = left/right, 3 = sink. Arcs: s→a, s→b
        // fixed; a→t, b→t from inputs? Keep it simpler: 4 parallel arcs
        // source→sink with given caps/costs; route half the total.
        let total: i64 = caps.iter().sum();
        let target = (total / 2).max(1);

        let mut net = FlowNetwork::new(2);
        for (c, k) in costs.iter().zip(&caps) {
            net.add_edge(0, 1, *k, *c).unwrap();
        }
        let flow_cost = net.solve(0, 1, FlowGoal::Exact(target)).unwrap().cost;

        let mut lp = LinearProgram::new(4, Sense::Minimize);
        lp.set_objective(costs.clone());
        for (j, &cap) in caps.iter().enumerate() { lp.set_bounds(j, 0.0, cap as f64); }
        lp.add_eq_constraint((0..4).map(|j| (j, 1.0)).collect(), target as f64);
        let lp_cost = lp.solve().unwrap().objective;

        prop_assert!((flow_cost - lp_cost).abs() < 1e-6,
            "flow {flow_cost} vs lp {lp_cost}");
    }
}
