//! Projected-gradient descent for smooth convex minimization over a convex
//! set given by a projection oracle.
//!
//! This is the workhorse for the load-balancing sub-problem `P2` (eq. 19 of
//! the paper): the objective `f_t + g_t + Σ μ y` is smooth and convex, and
//! the feasible set (box ∩ bandwidth budget) admits an exact projection via
//! [`crate::projection::project_box_budget`].
//!
//! Both plain projected gradient with backtracking line search and FISTA
//! acceleration (with function-value restart) are provided.

use crate::OptimError;

/// Options for [`minimize`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PgdOptions {
    /// Maximum number of outer iterations.
    pub max_iters: usize,
    /// Convergence tolerance on the prox-gradient residual
    /// `‖x − P(x − η ∇f(x))‖∞ / η`.
    pub tol: f64,
    /// Initial step size; adapted by backtracking.
    pub initial_step: f64,
    /// Multiplicative backtracking factor in `(0, 1)`.
    pub backtrack: f64,
    /// Smallest step size tried before giving up on further progress.
    pub min_step: f64,
    /// Whether to use FISTA momentum (with adaptive restart).
    pub accelerated: bool,
}

impl Default for PgdOptions {
    fn default() -> Self {
        PgdOptions {
            max_iters: 2_000,
            tol: 1e-8,
            initial_step: 1.0,
            backtrack: 0.5,
            min_step: 1e-14,
            accelerated: true,
        }
    }
}

/// Why a projected-gradient run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PgdExit {
    /// The prox-gradient residual dropped below `tol`.
    Converged,
    /// The iteration budget ran out first.
    IterationBudget,
}

impl PgdExit {
    /// Stable short name for telemetry labels and event fields.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            PgdExit::Converged => "converged",
            PgdExit::IterationBudget => "iteration_budget",
        }
    }
}

/// Outcome of a projected-gradient run.
#[derive(Debug, Clone, PartialEq)]
pub struct PgdResult {
    /// The final (feasible) iterate.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub objective: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the residual tolerance was met within the budget.
    pub converged: bool,
    /// Final prox-gradient residual.
    pub residual: f64,
    /// Projection-oracle invocations (initial projection, line-search
    /// candidates, restart retries).
    pub projections: usize,
    /// Line searches abandoned at the `min_step` floor.
    pub step_floor_hits: usize,
    /// Why the run stopped.
    pub exit: PgdExit,
}

/// Statistics of an in-place projected-gradient run
/// ([`minimize_with_scratch`]); the iterate itself is left in the
/// caller's buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PgdRunStats {
    /// Objective value at the final iterate.
    pub objective: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the residual tolerance was met within the budget.
    pub converged: bool,
    /// Final prox-gradient residual.
    pub residual: f64,
    /// Projection-oracle invocations (initial projection, line-search
    /// candidates, restart retries).
    pub projections: usize,
    /// Line searches abandoned at the `min_step` floor.
    pub step_floor_hits: usize,
    /// Why the run stopped.
    pub exit: PgdExit,
}

/// Caller-owned working buffers for [`minimize_with_scratch`].
///
/// Reusing one scratch across many solves (e.g. the per-slot `P2`
/// sub-problems inside the primal-dual loop) eliminates the four
/// per-call vector allocations of [`minimize`]. Buffers are resized on
/// entry, so one scratch serves problems of varying dimension.
#[derive(Debug, Clone, Default)]
pub struct PgdScratch {
    grad: Vec<f64>,
    y: Vec<f64>,
    candidate: Vec<f64>,
    plain: Vec<f64>,
}

impl PgdScratch {
    /// Creates an empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Minimizes a smooth convex `objective` over a convex set described by
/// `project`, starting from `x0` (which is projected first).
///
/// * `objective(x)` returns `f(x)`.
/// * `gradient(x, g)` writes `∇f(x)` into `g`.
/// * `project(x)` replaces `x` by its Euclidean projection onto the
///   feasible set.
///
/// Backtracking enforces the standard sufficient-decrease condition
/// `f(x⁺) ≤ f(x) + ⟨∇f(x), x⁺−x⟩ + ‖x⁺−x‖²/(2η)`, so no Lipschitz constant
/// is needed a priori.
///
/// # Errors
///
/// * [`OptimError::InvalidInput`] if `x0` is empty or options are invalid.
/// * [`OptimError::IterationLimit`] is **not** returned: hitting the budget
///   yields `converged = false` in the result instead, because approximate
///   solutions are still useful to the primal-dual loop.
///
/// ```
/// use jocal_optim::pgd::{minimize, PgdOptions};
/// // minimize (x-2)^2 over [0, 1]: optimum at x = 1.
/// let r = minimize(
///     |x| (x[0] - 2.0).powi(2),
///     |x, g| g[0] = 2.0 * (x[0] - 2.0),
///     |x| x[0] = x[0].clamp(0.0, 1.0),
///     vec![0.0],
///     PgdOptions::default(),
/// )?;
/// assert!((r.x[0] - 1.0).abs() < 1e-6);
/// # Ok::<(), jocal_optim::OptimError>(())
/// ```
pub fn minimize(
    objective: impl Fn(&[f64]) -> f64,
    gradient: impl Fn(&[f64], &mut [f64]),
    project: impl Fn(&mut [f64]),
    x0: Vec<f64>,
    opts: PgdOptions,
) -> Result<PgdResult, OptimError> {
    let mut x = x0;
    let mut scratch = PgdScratch::new();
    let stats = minimize_with_scratch(objective, gradient, project, &mut x, opts, &mut scratch)?;
    Ok(PgdResult {
        x,
        objective: stats.objective,
        iterations: stats.iterations,
        converged: stats.converged,
        residual: stats.residual,
        projections: stats.projections,
        step_floor_hits: stats.step_floor_hits,
        exit: stats.exit,
    })
}

/// Allocation-free variant of [`minimize`]: the iterate lives in the
/// caller's buffer `x` (starting point in, final iterate out) and all
/// working vectors come from `scratch`.
///
/// Semantics are identical to [`minimize`]; the two produce bitwise
/// equal iterates for the same inputs.
///
/// # Errors
///
/// Same contract as [`minimize`].
pub fn minimize_with_scratch(
    objective: impl Fn(&[f64]) -> f64,
    gradient: impl Fn(&[f64], &mut [f64]),
    project: impl Fn(&mut [f64]),
    x: &mut [f64],
    opts: PgdOptions,
    scratch: &mut PgdScratch,
) -> Result<PgdRunStats, OptimError> {
    if x.is_empty() {
        return Err(OptimError::invalid("pgd: empty starting point"));
    }
    if !(opts.backtrack > 0.0 && opts.backtrack < 1.0) {
        return Err(OptimError::invalid(format!(
            "pgd: backtrack factor must lie in (0,1), got {}",
            opts.backtrack
        )));
    }
    if opts.initial_step <= 0.0 {
        return Err(OptimError::invalid("pgd: initial step must be positive"));
    }

    let n = x.len();
    let PgdScratch {
        grad,
        y,
        candidate,
        plain,
    } = scratch;
    grad.clear();
    grad.resize(n, 0.0);

    let mut projections = 1usize;
    let mut step_floor_hits = 0usize;
    project(x);
    let mut fx = objective(x);
    let mut step = opts.initial_step;

    // FISTA state.
    y.clear();
    y.extend_from_slice(x);
    let mut t_momentum = 1.0_f64;

    let mut residual = f64::INFINITY;
    for iter in 0..opts.max_iters {
        let base: &[f64] = if opts.accelerated { y } else { x };
        gradient(base, grad);
        let f_base = if opts.accelerated {
            objective(base)
        } else {
            fx
        };

        // Backtracking from the current step (allow mild growth between
        // iterations so the step can recover after a conservative phase).
        step = (step * 2.0).min(opts.initial_step.max(step * 2.0));
        loop {
            candidate.clear();
            candidate.extend(base.iter().zip(grad.iter()).map(|(bi, gi)| bi - step * gi));
            projections += 1;
            project(candidate);
            let f_cand = objective(candidate);
            let mut inner = 0.0;
            let mut dist2 = 0.0;
            for i in 0..n {
                let d = candidate[i] - base[i];
                inner += grad[i] * d;
                dist2 += d * d;
            }
            if f_cand <= f_base + inner + dist2 / (2.0 * step) + 1e-15 {
                break;
            }
            step *= opts.backtrack;
            if step < opts.min_step {
                // Cannot make progress at machine precision; accept.
                step_floor_hits += 1;
                break;
            }
        }

        // Residual measured on the actual movement of the main iterate.
        residual = candidate
            .iter()
            .zip(base.iter())
            .map(|(c, b)| (c - b).abs())
            .fold(0.0_f64, f64::max)
            / step;

        let f_new = objective(candidate);
        if opts.accelerated {
            // Function-value restart keeps FISTA monotone enough for our use.
            if f_new > fx {
                t_momentum = 1.0;
                y.copy_from_slice(x);
                // Retry as a plain projected-gradient step from x.
                gradient(x, grad);
                plain.clear();
                plain.extend(x.iter().zip(grad.iter()).map(|(xi, gi)| xi - step * gi));
                projections += 1;
                project(plain);
                let f_plain = objective(plain);
                if f_plain <= fx {
                    x.copy_from_slice(plain);
                    fx = f_plain;
                }
            } else {
                let t_next = 0.5 * (1.0 + (1.0 + 4.0 * t_momentum * t_momentum).sqrt());
                let beta = (t_momentum - 1.0) / t_next;
                for i in 0..n {
                    y[i] = candidate[i] + beta * (candidate[i] - x[i]);
                }
                x.copy_from_slice(candidate);
                fx = f_new;
                t_momentum = t_next;
            }
        } else {
            x.copy_from_slice(candidate);
            fx = f_new;
        }

        if residual <= opts.tol {
            return Ok(PgdRunStats {
                objective: fx,
                iterations: iter + 1,
                converged: true,
                residual,
                projections,
                step_floor_hits,
                exit: PgdExit::Converged,
            });
        }
    }

    Ok(PgdRunStats {
        objective: fx,
        iterations: opts.max_iters,
        converged: false,
        residual,
        projections,
        step_floor_hits,
        exit: PgdExit::IterationBudget,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::projection::project_box_budget;

    #[test]
    fn unconstrained_quadratic() {
        let r = minimize(
            |x| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2),
            |x, g| {
                g[0] = 2.0 * (x[0] - 3.0);
                g[1] = 2.0 * (x[1] + 1.0);
            },
            |_x| {},
            vec![0.0, 0.0],
            PgdOptions::default(),
        )
        .unwrap();
        assert!(r.converged);
        assert!((r.x[0] - 3.0).abs() < 1e-6);
        assert!((r.x[1] + 1.0).abs() < 1e-6);
    }

    #[test]
    fn box_constrained_optimum_on_boundary() {
        let r = minimize(
            |x| (x[0] - 5.0).powi(2),
            |x, g| g[0] = 2.0 * (x[0] - 5.0),
            |x| x[0] = x[0].clamp(0.0, 2.0),
            vec![0.0],
            PgdOptions::default(),
        )
        .unwrap();
        assert!((r.x[0] - 2.0).abs() < 1e-8);
    }

    #[test]
    fn budget_constrained_quadratic_matches_kkt() {
        // minimize ||x - (1,1)||^2 st x in [0,1]^2, x0 + x1 <= 1.
        // Optimum: (0.5, 0.5).
        let lo = [0.0, 0.0];
        let hi = [1.0, 1.0];
        let w = [1.0, 1.0];
        let r = minimize(
            |x| (x[0] - 1.0).powi(2) + (x[1] - 1.0).powi(2),
            |x, g| {
                g[0] = 2.0 * (x[0] - 1.0);
                g[1] = 2.0 * (x[1] - 1.0);
            },
            |x| {
                let p = project_box_budget(x, &lo, &hi, &w, 1.0).unwrap();
                x.copy_from_slice(&p);
            },
            vec![0.0, 0.0],
            PgdOptions::default(),
        )
        .unwrap();
        assert!((r.x[0] - 0.5).abs() < 1e-6);
        assert!((r.x[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn accelerated_and_plain_agree() {
        let obj = |x: &[f64]| {
            // Ill-conditioned quadratic.
            100.0 * (x[0] - 0.3).powi(2) + (x[1] - 0.7).powi(2)
        };
        let grad = |x: &[f64], g: &mut [f64]| {
            g[0] = 200.0 * (x[0] - 0.3);
            g[1] = 2.0 * (x[1] - 0.7);
        };
        let proj = |x: &mut [f64]| {
            for v in x.iter_mut() {
                *v = v.clamp(0.0, 1.0);
            }
        };
        let plain = minimize(
            obj,
            grad,
            proj,
            vec![1.0, 0.0],
            PgdOptions {
                accelerated: false,
                max_iters: 20_000,
                ..Default::default()
            },
        )
        .unwrap();
        let fast = minimize(obj, grad, proj, vec![1.0, 0.0], PgdOptions::default()).unwrap();
        assert!((plain.objective - fast.objective).abs() < 1e-6);
        assert!(fast.iterations <= plain.iterations);
    }

    #[test]
    fn rejects_bad_options() {
        let opts = PgdOptions {
            backtrack: 1.5,
            ..Default::default()
        };
        assert!(minimize(|_| 0.0, |_, _| {}, |_| {}, vec![0.0], opts).is_err());
        assert!(minimize(|_| 0.0, |_, _| {}, |_| {}, vec![], PgdOptions::default()).is_err());
    }

    #[test]
    fn reports_unconverged_when_budget_exhausted() {
        let r = minimize(
            |x| (x[0] - 1.0).powi(2),
            |x, g| g[0] = 2.0 * (x[0] - 1.0),
            |_x| {},
            vec![1e9],
            PgdOptions {
                max_iters: 1,
                tol: 1e-16,
                accelerated: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!r.converged);
        assert_eq!(r.iterations, 1);
        assert_eq!(r.exit, PgdExit::IterationBudget);
    }

    #[test]
    fn counts_projections_and_reports_exit_reason() {
        let r = minimize(
            |x| (x[0] - 2.0).powi(2),
            |x, g| g[0] = 2.0 * (x[0] - 2.0),
            |x| x[0] = x[0].clamp(0.0, 1.0),
            vec![5.0],
            PgdOptions::default(),
        )
        .unwrap();
        assert_eq!(r.exit, PgdExit::Converged);
        assert_eq!(r.exit.as_str(), "converged");
        // One initial projection plus at least one line-search candidate
        // per iteration.
        assert!(
            r.projections > r.iterations,
            "projections {} iterations {}",
            r.projections,
            r.iterations
        );
        assert_eq!(r.step_floor_hits, 0);
    }
}
