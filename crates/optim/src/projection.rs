//! Euclidean projections onto the feasible sets used by the load-balancing
//! sub-problem.
//!
//! The load-balancing variables live in a box `[lo, hi]` intersected with a
//! single weighted budget constraint `Σ w_i v_i ≤ b` (the SBS bandwidth
//! constraint, eq. 2 of the paper). Projection onto that set reduces to a
//! one-dimensional search over the budget multiplier `θ ≥ 0`:
//!
//! `v_i(θ) = clamp(p_i − θ w_i, lo_i, hi_i)` and `Σ w_i v_i(θ)` is
//! non-increasing in `θ`, so bisection finds the exact multiplier.

use crate::bisection::{bisect_decreasing, BisectionOptions};
use crate::OptimError;

/// Clamps every entry of `v` into `[lo[i], hi[i]]` in place.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn clamp_box(v: &mut [f64], lo: &[f64], hi: &[f64]) {
    assert_eq!(v.len(), lo.len(), "clamp_box: lo length mismatch");
    assert_eq!(v.len(), hi.len(), "clamp_box: hi length mismatch");
    for i in 0..v.len() {
        v[i] = v[i].max(lo[i]).min(hi[i]);
    }
}

/// Projects `point` onto `{v : lo ≤ v ≤ hi, Σ w_i v_i ≤ budget}`.
///
/// Weights `w` must be non-negative. Entries with `w_i = 0` are only box
/// clamped. Returns the projected vector.
///
/// # Errors
///
/// * [`OptimError::InvalidInput`] if lengths mismatch, a weight is negative
///   or non-finite, or a bound pair is inverted.
/// * [`OptimError::Infeasible`] if even the box lower corner violates the
///   budget, i.e. `Σ w_i lo_i > budget`.
///
/// ```
/// use jocal_optim::projection::project_box_budget;
/// // Project (1, 1) onto the unit box with x + y <= 1: lands on (0.5, 0.5).
/// let p = project_box_budget(&[1.0, 1.0], &[0.0, 0.0], &[1.0, 1.0],
///     &[1.0, 1.0], 1.0)?;
/// assert!((p[0] - 0.5).abs() < 1e-9 && (p[1] - 0.5).abs() < 1e-9);
/// # Ok::<(), jocal_optim::OptimError>(())
/// ```
pub fn project_box_budget(
    point: &[f64],
    lo: &[f64],
    hi: &[f64],
    w: &[f64],
    budget: f64,
) -> Result<Vec<f64>, OptimError> {
    let n = point.len();
    if lo.len() != n || hi.len() != n || w.len() != n {
        return Err(OptimError::invalid(
            "project_box_budget: length mismatch between point, bounds and weights",
        ));
    }
    for i in 0..n {
        if lo[i] > hi[i] + 1e-15 {
            return Err(OptimError::invalid(format!(
                "inverted bounds at index {i}: lo={} > hi={}",
                lo[i], hi[i]
            )));
        }
        if !(w[i].is_finite() && w[i] >= 0.0) {
            return Err(OptimError::invalid(format!(
                "weight at index {i} must be finite and non-negative, got {}",
                w[i]
            )));
        }
    }

    // Start from the plain box projection; if it already satisfies the
    // budget we are done (θ = 0 is optimal).
    let mut v = point.to_vec();
    clamp_box(&mut v, lo, hi);
    let used: f64 = v.iter().zip(w).map(|(vi, wi)| vi * wi).sum();
    if used <= budget + 1e-12 {
        return Ok(v);
    }

    let min_use: f64 = lo.iter().zip(w).map(|(li, wi)| li * wi).sum();
    if min_use > budget + 1e-9 {
        return Err(OptimError::infeasible(format!(
            "budget {budget} below the minimum box usage {min_use}"
        )));
    }

    // The usage Σ w_i · clamp(p_i − θ w_i, lo_i, hi_i) is piecewise linear
    // and non-increasing in θ with at most 2n breakpoints (where an entry
    // leaves its upper bound or hits its lower bound). Walk the sorted
    // breakpoints to find the segment crossing the budget, then solve the
    // linear equation exactly — O(n log n), no tolerance.
    //
    // Entry i is at hi for θ ≤ t_hi(i) = (p_i − hi_i)/w_i, at lo for
    // θ ≥ t_lo(i) = (p_i − lo_i)/w_i, and linear (slope −w_i²) between.
    let mut events: Vec<(f64, f64, f64)> = Vec::with_capacity(2 * n);
    // usage(θ) = constant + slope·θ on each segment. Start at θ = 0 where
    // some entries may already be interior or at lo.
    let mut usage0 = 0.0; // usage at θ = 0
    let mut slope0 = 0.0; // slope at θ = 0+
    for i in 0..n {
        if w[i] == 0.0 {
            continue;
        }
        let t_hi = (point[i] - hi[i]) / w[i];
        let t_lo = (point[i] - lo[i]) / w[i];
        // Contribution at θ = 0.
        let v0 = point[i].max(lo[i]).min(hi[i]);
        usage0 += w[i] * v0;
        if 0.0 > t_hi && 0.0 < t_lo {
            slope0 -= w[i] * w[i];
        }
        // Slope changes: at t_hi the entry becomes interior (slope gains
        // −w²); at t_lo it freezes at lo (slope gains +w²). Entries whose
        // interior segment starts at θ ≥ 0 contribute both events; entries
        // already interior at θ = 0 (counted in slope0) contribute only
        // the freeze; entries already at lo contribute nothing.
        if t_hi >= 0.0 {
            events.push((t_hi, -w[i] * w[i], 0.0));
            events.push((t_lo, w[i] * w[i], 0.0));
        } else if t_lo > 0.0 {
            events.push((t_lo, w[i] * w[i], 0.0));
        }
    }
    events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite breakpoints"));

    let mut theta_prev = 0.0;
    let mut usage = usage0;
    let mut slope = slope0;
    let mut theta = None;
    for &(bp, dslope, _) in &events {
        let candidate = usage + slope * (bp - theta_prev);
        if candidate <= budget {
            // Crossing happens inside this segment.
            theta = Some(if slope < 0.0 {
                theta_prev + (budget - usage) / slope
            } else {
                bp
            });
            break;
        }
        usage = candidate;
        slope += dslope;
        theta_prev = bp;
    }
    let theta = match theta {
        Some(t) => t,
        None => {
            // Past the last breakpoint usage is constant at Σ w·lo ≤ budget
            // (checked above); crossing must occur on the final segment.
            if slope < 0.0 {
                theta_prev + (budget - usage) / slope
            } else {
                theta_prev
            }
        }
    };
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push((point[i] - theta * w[i]).max(lo[i]).min(hi[i]));
    }
    Ok(out)
}

/// Reference implementation of [`project_box_budget`] using bisection on
/// the budget multiplier; kept for cross-checking the exact
/// breakpoint-walk solver in tests.
///
/// # Errors
///
/// Same contract as [`project_box_budget`].
pub fn project_box_budget_bisect(
    point: &[f64],
    lo: &[f64],
    hi: &[f64],
    w: &[f64],
    budget: f64,
) -> Result<Vec<f64>, OptimError> {
    let n = point.len();
    if lo.len() != n || hi.len() != n || w.len() != n {
        return Err(OptimError::invalid(
            "project_box_budget_bisect: length mismatch",
        ));
    }
    let mut v = point.to_vec();
    clamp_box(&mut v, lo, hi);
    let used: f64 = v.iter().zip(w).map(|(vi, wi)| vi * wi).sum();
    if used <= budget + 1e-12 {
        return Ok(v);
    }
    let min_use: f64 = lo.iter().zip(w).map(|(li, wi)| li * wi).sum();
    if min_use > budget + 1e-9 {
        return Err(OptimError::infeasible(format!(
            "budget {budget} below the minimum box usage {min_use}"
        )));
    }
    let usage = |theta: f64| -> f64 {
        point
            .iter()
            .zip(w)
            .zip(lo.iter().zip(hi))
            .map(|((pi, wi), (li, hi_i))| {
                let vi = (pi - theta * wi).max(*li).min(*hi_i);
                vi * wi
            })
            .sum::<f64>()
            - budget
    };
    let mut theta_hi = 1.0_f64;
    for i in 0..n {
        if w[i] > 0.0 {
            theta_hi = theta_hi.max((point[i] - lo[i]) / w[i] + 1.0);
        }
    }
    let theta = bisect_decreasing(usage, 0.0, theta_hi, BisectionOptions::default())?;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push((point[i] - theta * w[i]).max(lo[i]).min(hi[i]));
    }
    Ok(out)
}

/// Projects onto the probability-like simplex `{v ≥ 0 : Σ v_i = s}` using
/// the sort-based exact algorithm.
///
/// # Errors
///
/// Returns [`OptimError::InvalidInput`] if `s < 0` or the input contains a
/// non-finite entry.
pub fn project_simplex(point: &[f64], s: f64) -> Result<Vec<f64>, OptimError> {
    if s < 0.0 {
        return Err(OptimError::invalid("simplex radius must be non-negative"));
    }
    if point.iter().any(|v| !v.is_finite()) {
        return Err(OptimError::invalid("point contains non-finite entry"));
    }
    if point.is_empty() {
        return Ok(Vec::new());
    }
    let mut sorted = point.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite entries are comparable"));
    let mut cumsum = 0.0;
    let mut rho = 0usize;
    let mut theta = 0.0;
    for (i, &u) in sorted.iter().enumerate() {
        cumsum += u;
        let candidate = (cumsum - s) / (i as f64 + 1.0);
        if u - candidate > 0.0 {
            rho = i;
            theta = candidate;
        }
    }
    let _ = rho;
    Ok(point.iter().map(|&v| (v - theta).max(0.0)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget_used(v: &[f64], w: &[f64]) -> f64 {
        v.iter().zip(w).map(|(a, b)| a * b).sum()
    }

    #[test]
    fn box_only_when_budget_slack() {
        let p =
            project_box_budget(&[2.0, -1.0], &[0.0, 0.0], &[1.0, 1.0], &[1.0, 1.0], 10.0).unwrap();
        assert_eq!(p, vec![1.0, 0.0]);
    }

    #[test]
    fn budget_tight_projection_is_feasible_and_optimal() {
        let point = [0.9, 0.8, 0.7];
        let lo = [0.0; 3];
        let hi = [1.0; 3];
        let w = [1.0, 2.0, 1.0];
        let b = 1.5;
        let p = project_box_budget(&point, &lo, &hi, &w, b).unwrap();
        assert!(budget_used(&p, &w) <= b + 1e-8);
        // KKT: active budget means all interior coordinates share
        // (p_i - v_i)/w_i = θ > 0.
        let thetas: Vec<f64> = (0..3)
            .filter(|&i| p[i] > 1e-9 && p[i] < 1.0 - 1e-9)
            .map(|i| (point[i] - p[i]) / w[i])
            .collect();
        for pair in thetas.windows(2) {
            assert!((pair[0] - pair[1]).abs() < 1e-6);
        }
    }

    #[test]
    fn infeasible_budget_detected() {
        let err = project_box_budget(&[0.5], &[1.0], &[2.0], &[1.0], 0.5);
        assert!(matches!(err, Err(OptimError::Infeasible { .. })));
    }

    #[test]
    fn zero_weight_entries_ignored_by_budget() {
        let p =
            project_box_budget(&[5.0, 5.0], &[0.0, 0.0], &[1.0, 1.0], &[0.0, 1.0], 0.25).unwrap();
        assert_eq!(p[0], 1.0); // unconstrained by budget
        assert!((p[1] - 0.25).abs() < 1e-8);
    }

    #[test]
    fn rejects_negative_weight() {
        assert!(project_box_budget(&[0.0], &[0.0], &[1.0], &[-1.0], 1.0).is_err());
    }

    #[test]
    fn rejects_length_mismatch() {
        assert!(project_box_budget(&[0.0, 1.0], &[0.0], &[1.0], &[1.0], 1.0).is_err());
    }

    #[test]
    fn simplex_projection_sums_to_radius() {
        let p = project_simplex(&[0.5, 0.3, 0.9], 1.0).unwrap();
        let total: f64 = p.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn simplex_projection_of_feasible_interior_point() {
        // A point already on the simplex projects to itself.
        let p = project_simplex(&[0.2, 0.3, 0.5], 1.0).unwrap();
        for (a, b) in p.iter().zip([0.2, 0.3, 0.5]) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn simplex_rejects_negative_radius() {
        assert!(project_simplex(&[0.1], -1.0).is_err());
    }

    #[test]
    fn empty_inputs_ok() {
        assert!(project_simplex(&[], 1.0).unwrap().is_empty());
        let p = project_box_budget(&[], &[], &[], &[], 1.0).unwrap();
        assert!(p.is_empty());
    }

    #[test]
    fn exact_matches_bisection_reference() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..200 {
            let n = rng.gen_range(1..12);
            let point: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..3.0)).collect();
            let lo: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..0.5)).collect();
            let hi: Vec<f64> = lo.iter().map(|l| l + rng.gen_range(0.0..2.0)).collect();
            let w: Vec<f64> = (0..n)
                .map(|_| {
                    if rng.gen_bool(0.2) {
                        0.0
                    } else {
                        rng.gen_range(0.1..3.0)
                    }
                })
                .collect();
            let min_use: f64 = lo.iter().zip(&w).map(|(l, wi)| l * wi).sum();
            let budget = min_use + rng.gen_range(0.01..5.0);
            let exact = project_box_budget(&point, &lo, &hi, &w, budget).unwrap();
            let refr = project_box_budget_bisect(&point, &lo, &hi, &w, budget).unwrap();
            for (i, (a, b)) in exact.iter().zip(&refr).enumerate() {
                assert!(
                    (a - b).abs() < 1e-5,
                    "trial {trial} entry {i}: exact {a} vs bisect {b}"
                );
            }
        }
    }
}
