//! Subgradient dual-ascent machinery for Lagrangian decomposition.
//!
//! The paper's Algorithm 1 relaxes the coupling constraint `y ≤ x` with
//! multipliers `μ ≥ 0` and updates them by projected subgradient ascent
//! (eq. 15–17):
//!
//! ```text
//! μ^(l+1) = [ μ^(l) + δ^(l) · g^(l) ]⁺ ,   δ^(l) = 1 / (1 + α·l) ,
//! g^(l)   = y^(l) − x^(l)  (constraint violation).
//! ```
//!
//! This module provides the step-size schedules and a reusable
//! [`DualAscent`] state machine; `jocal-core` drives it with the actual
//! sub-problem solvers.

use std::fmt;

/// Diminishing step-size schedules for subgradient methods.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepSchedule {
    /// The paper's schedule `δ_l = 1/(1 + α l)` (eq. 16).
    Harmonic {
        /// Slope `α > 0` controlling how fast the step decays.
        alpha: f64,
    },
    /// The paper's schedule with a magnitude prefactor,
    /// `δ_l = scale/(1 + α l)`: required in practice because the optimal
    /// multipliers scale with the cost gradients of the instance.
    ScaledHarmonic {
        /// Magnitude prefactor.
        scale: f64,
        /// Decay slope `α > 0`.
        alpha: f64,
    },
    /// Constant step `δ_l = c`.
    Constant {
        /// The constant step value.
        step: f64,
    },
    /// Square-summable `δ_l = c / √(l+1)`.
    InverseSqrt {
        /// Numerator `c > 0`.
        scale: f64,
    },
}

impl StepSchedule {
    /// Step size at (0-based) iteration `l`.
    ///
    /// ```
    /// use jocal_optim::subgradient::StepSchedule;
    /// let s = StepSchedule::Harmonic { alpha: 1.0 };
    /// assert!((s.step(0) - 1.0).abs() < 1e-12);
    /// assert!((s.step(1) - 0.5).abs() < 1e-12);
    /// ```
    #[must_use]
    pub fn step(&self, l: usize) -> f64 {
        match *self {
            StepSchedule::Harmonic { alpha } => 1.0 / (1.0 + alpha * l as f64),
            StepSchedule::ScaledHarmonic { scale, alpha } => scale / (1.0 + alpha * l as f64),
            StepSchedule::Constant { step } => step,
            StepSchedule::InverseSqrt { scale } => scale / ((l + 1) as f64).sqrt(),
        }
    }
}

/// Projected subgradient ascent over non-negative multipliers.
///
/// Tracks the iteration counter, the best lower/upper bounds seen, and the
/// relative duality gap the paper's Algorithm 1 uses as its stopping rule
/// (`(UB − LB)/UB ≤ ε`).
#[derive(Clone)]
pub struct DualAscent {
    multipliers: Vec<f64>,
    schedule: StepSchedule,
    iteration: usize,
    lower_bound: f64,
    upper_bound: f64,
    clipped_last: usize,
}

impl DualAscent {
    /// Creates a driver with `n` multipliers initialized to zero.
    #[must_use]
    pub fn new(n: usize, schedule: StepSchedule) -> Self {
        DualAscent {
            multipliers: vec![0.0; n],
            schedule,
            iteration: 0,
            lower_bound: f64::NEG_INFINITY,
            upper_bound: f64::INFINITY,
            clipped_last: 0,
        }
    }

    /// Current multipliers `μ^(l)`.
    #[inline]
    #[must_use]
    pub fn multipliers(&self) -> &[f64] {
        &self.multipliers
    }

    /// Current iteration counter `l`.
    #[inline]
    #[must_use]
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// Best dual (lower) bound observed so far.
    #[inline]
    #[must_use]
    pub fn lower_bound(&self) -> f64 {
        self.lower_bound
    }

    /// Best primal (upper) bound observed so far.
    #[inline]
    #[must_use]
    pub fn upper_bound(&self) -> f64 {
        self.upper_bound
    }

    /// Step size `δ_l` the *next* [`Self::ascend`] call will use.
    #[inline]
    #[must_use]
    pub fn current_step(&self) -> f64 {
        self.schedule.step(self.iteration)
    }

    /// Multipliers clipped at zero by the most recent [`Self::ascend`]
    /// (active non-negativity projections).
    #[inline]
    #[must_use]
    pub fn last_clipped(&self) -> usize {
        self.clipped_last
    }

    /// Records a dual objective value; keeps the maximum (Algorithm 1,
    /// lines 5–7).
    pub fn record_dual_value(&mut self, value: f64) {
        if value > self.lower_bound {
            self.lower_bound = value;
        }
    }

    /// Records a feasible primal objective value; keeps the minimum
    /// (Algorithm 1, line 8).
    pub fn record_primal_value(&mut self, value: f64) {
        if value < self.upper_bound {
            self.upper_bound = value;
        }
    }

    /// Relative duality gap `(UB − LB) / max(|UB|, 1)`; `∞` until both
    /// bounds exist.
    #[must_use]
    pub fn relative_gap(&self) -> f64 {
        if !self.lower_bound.is_finite() || !self.upper_bound.is_finite() {
            return f64::INFINITY;
        }
        (self.upper_bound - self.lower_bound).max(0.0) / self.upper_bound.abs().max(1.0)
    }

    /// Performs one projected ascent step `μ ← [μ + δ_l g]⁺` and advances
    /// the iteration counter. `violation[i]` is the subgradient
    /// `g_i = y_i − x_i`.
    ///
    /// # Panics
    ///
    /// Panics if `violation.len()` differs from the multiplier count.
    pub fn ascend(&mut self, violation: &[f64]) {
        assert_eq!(
            violation.len(),
            self.multipliers.len(),
            "subgradient dimension mismatch"
        );
        let delta = self.schedule.step(self.iteration);
        let mut clipped = 0;
        for (mu, g) in self.multipliers.iter_mut().zip(violation) {
            let raw = *mu + delta * g;
            clipped += usize::from(raw < 0.0);
            *mu = raw.max(0.0);
        }
        self.clipped_last = clipped;
        self.iteration += 1;
    }

    /// Performs one projected ascent step over a *sparse* subgradient:
    /// `μ_i ← [μ_i + δ_l g_j]⁺` for each `(i, g_j)` in
    /// `indices × violation`, leaving every other coordinate untouched,
    /// then advances the iteration counter once.
    ///
    /// The caller guarantees that every coordinate outside `indices` has
    /// a zero subgradient **and** a zero multiplier, so skipping it is
    /// exact: `[0 + δ·0]⁺ = 0`. With that invariant the touched
    /// coordinates see the same arithmetic as [`Self::ascend`], making
    /// the sparse and dense updates bit-identical. `last_clipped` counts
    /// projections among the touched coordinates only.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ or an index is out of range.
    pub fn ascend_at(&mut self, indices: &[usize], violation: &[f64]) {
        assert_eq!(
            violation.len(),
            indices.len(),
            "sparse subgradient dimension mismatch"
        );
        let delta = self.schedule.step(self.iteration);
        let mut clipped = 0;
        for (&i, g) in indices.iter().zip(violation) {
            let mu = &mut self.multipliers[i];
            let raw = *mu + delta * g;
            clipped += usize::from(raw < 0.0);
            *mu = raw.max(0.0);
        }
        self.clipped_last = clipped;
        self.iteration += 1;
    }

    /// Resets multipliers, bounds and the iteration counter.
    pub fn reset(&mut self) {
        self.multipliers.iter_mut().for_each(|m| *m = 0.0);
        self.iteration = 0;
        self.lower_bound = f64::NEG_INFINITY;
        self.upper_bound = f64::INFINITY;
        self.clipped_last = 0;
    }
}

impl fmt::Debug for DualAscent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DualAscent")
            .field("n", &self.multipliers.len())
            .field("iteration", &self.iteration)
            .field("lower_bound", &self.lower_bound)
            .field("upper_bound", &self.upper_bound)
            .field("gap", &self.relative_gap())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_schedule_matches_paper() {
        let s = StepSchedule::Harmonic { alpha: 2.0 };
        assert!((s.step(0) - 1.0).abs() < 1e-12);
        assert!((s.step(3) - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn ascend_projects_to_nonnegative() {
        let mut d = DualAscent::new(2, StepSchedule::Constant { step: 1.0 });
        assert_eq!(d.current_step(), 1.0);
        d.ascend(&[-5.0, 2.0]);
        assert_eq!(d.multipliers(), &[0.0, 2.0]);
        assert_eq!(d.iteration(), 1);
        // Exactly one coordinate hit the non-negativity projection.
        assert_eq!(d.last_clipped(), 1);
    }

    #[test]
    fn sparse_ascend_matches_dense_on_support() {
        let schedule = StepSchedule::ScaledHarmonic {
            scale: 0.7,
            alpha: 0.3,
        };
        let mut dense = DualAscent::new(4, schedule);
        let mut sparse = DualAscent::new(4, schedule);
        // Support {1, 3}; off-support coordinates have zero subgradient
        // and zero multiplier throughout.
        for round in 0..5 {
            let g1 = 0.4 - 0.1 * round as f64;
            let g3 = -0.9 + 0.5 * round as f64;
            dense.ascend(&[0.0, g1, 0.0, g3]);
            sparse.ascend_at(&[1, 3], &[g1, g3]);
            assert_eq!(dense.iteration(), sparse.iteration());
            for i in 0..4 {
                assert_eq!(
                    dense.multipliers()[i].to_bits(),
                    sparse.multipliers()[i].to_bits(),
                    "round {round} coord {i}"
                );
            }
        }
    }

    #[test]
    fn bounds_track_best_values() {
        let mut d = DualAscent::new(1, StepSchedule::Constant { step: 0.1 });
        d.record_dual_value(1.0);
        d.record_dual_value(0.5); // worse, ignored
        d.record_primal_value(3.0);
        d.record_primal_value(2.0);
        assert_eq!(d.lower_bound(), 1.0);
        assert_eq!(d.upper_bound(), 2.0);
        assert!((d.relative_gap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gap_infinite_before_bounds() {
        let d = DualAscent::new(1, StepSchedule::Constant { step: 0.1 });
        assert!(d.relative_gap().is_infinite());
    }

    #[test]
    fn dual_ascent_solves_simple_lagrangian() {
        // min x^2 - 2x  s.t. x <= 0.5 over x in [0, 2].
        // Lagrangian: x^2 - 2x + mu (x - 0.5); inner argmin over [0,2] is
        // x = clamp(1 - mu/2, 0, 2). Optimal mu* = 1, x* = 0.5.
        let mut d = DualAscent::new(1, StepSchedule::Harmonic { alpha: 0.05 });
        let mut x = 0.0;
        for _ in 0..4_000 {
            let mu = d.multipliers()[0];
            x = (1.0 - mu / 2.0).clamp(0.0, 2.0);
            let dual_val = x * x - 2.0 * x + mu * (x - 0.5);
            d.record_dual_value(dual_val);
            let x_feas = x.min(0.5);
            d.record_primal_value(x_feas * x_feas - 2.0 * x_feas);
            d.ascend(&[x - 0.5]);
        }
        assert!((x - 0.5).abs() < 1e-2, "x={x}");
        assert!(d.relative_gap() < 1e-3, "gap={}", d.relative_gap());
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut d = DualAscent::new(2, StepSchedule::Constant { step: 1.0 });
        d.ascend(&[1.0, 1.0]);
        d.record_primal_value(1.0);
        d.reset();
        assert_eq!(d.multipliers(), &[0.0, 0.0]);
        assert_eq!(d.iteration(), 0);
        assert!(d.relative_gap().is_infinite());
    }
}
