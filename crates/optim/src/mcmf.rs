//! Min-cost flow via successive shortest paths with node potentials.
//!
//! The caching sub-problem `P1` of the paper is an integral network LP
//! (its constraint matrix is totally unimodular — Theorem 1). `jocal-core`
//! encodes it as a flow network in which each of the `C_n` cache slots is a
//! unit of flow traveling through time; this module supplies the generic
//! solver.
//!
//! Features:
//!
//! * real-valued arc costs, integral capacities (so optimal flows are
//!   integral — exactly the property Theorem 1 needs);
//! * negative arc costs supported via a Bellman–Ford potential
//!   initialization (the graph must not contain negative-cost *cycles*;
//!   the `P1` network is a DAG, so this always holds there);
//! * fixed-flow-value and min-cost-max-flow modes, plus a mode that stops
//!   augmenting once shortest paths become cost-increasing.

use crate::OptimError;

/// Identifier of an arc returned by [`FlowNetwork::add_edge`].
///
/// Use it with [`FlowNetwork::flow`] after solving to read the arc's flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeId(usize);

#[derive(Debug, Clone)]
struct Arc {
    to: usize,
    cap: i64,
    cost: f64,
}

/// How much flow [`FlowNetwork::solve`] should try to route.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlowGoal {
    /// Route exactly this amount; error if the network cannot carry it.
    Exact(i64),
    /// Route as much flow as possible regardless of cost.
    Max,
    /// Route flow only while each additional augmenting path has negative
    /// cost (i.e. find the min-cost flow of *any* value).
    WhileProfitable,
}

/// Result of a min-cost-flow computation.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowResult {
    /// Total routed flow.
    pub flow: i64,
    /// Total cost of the routed flow.
    pub cost: f64,
    /// Number of augmenting-path iterations.
    pub augmentations: usize,
}

/// A directed flow network with integral capacities and real costs.
///
/// ```
/// use jocal_optim::mcmf::{FlowNetwork, FlowGoal};
/// let mut net = FlowNetwork::new(4);
/// let cheap = net.add_edge(0, 1, 1, 1.0)?;
/// net.add_edge(1, 3, 1, 0.0)?;
/// net.add_edge(0, 2, 1, 5.0)?;
/// net.add_edge(2, 3, 1, 0.0)?;
/// let result = net.solve(0, 3, FlowGoal::Exact(2))?;
/// assert_eq!(result.flow, 2);
/// assert!((result.cost - 6.0).abs() < 1e-9);
/// assert_eq!(net.flow(cheap), 1);
/// # Ok::<(), jocal_optim::OptimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    n: usize,
    // Flat arc storage; arc 2k and 2k+1 are a forward/backward pair.
    arcs: Vec<Arc>,
    adj: Vec<Vec<usize>>,
    original_cap: Vec<i64>,
}

/// Cost tolerance for "profitable path" decisions.
const COST_EPS: f64 = 1e-12;

impl FlowNetwork {
    /// Creates a network with `n` nodes and no arcs.
    #[must_use]
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            n,
            arcs: Vec::new(),
            adj: vec![Vec::new(); n],
            original_cap: Vec::new(),
        }
    }

    /// Number of nodes.
    #[inline]
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of (forward) arcs.
    #[inline]
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.arcs.len() / 2
    }

    /// Adds a directed arc `from → to` with the given capacity and cost.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::InvalidInput`] for out-of-range endpoints,
    /// negative capacity or non-finite cost.
    pub fn add_edge(
        &mut self,
        from: usize,
        to: usize,
        capacity: i64,
        cost: f64,
    ) -> Result<EdgeId, OptimError> {
        if from >= self.n || to >= self.n {
            return Err(OptimError::invalid(format!(
                "edge endpoints ({from}, {to}) out of range for {} nodes",
                self.n
            )));
        }
        if capacity < 0 {
            return Err(OptimError::invalid(format!(
                "negative capacity {capacity} on edge ({from}, {to})"
            )));
        }
        if !cost.is_finite() {
            return Err(OptimError::invalid(format!(
                "non-finite cost on edge ({from}, {to})"
            )));
        }
        let id = self.arcs.len();
        self.arcs.push(Arc {
            to,
            cap: capacity,
            cost,
        });
        self.arcs.push(Arc {
            to: from,
            cap: 0,
            cost: -cost,
        });
        self.adj[from].push(id);
        self.adj[to].push(id + 1);
        self.original_cap.push(capacity);
        Ok(EdgeId(id / 2))
    }

    /// Flow currently routed on a forward arc (0 before solving).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this network.
    #[must_use]
    pub fn flow(&self, id: EdgeId) -> i64 {
        let fwd = id.0 * 2;
        assert!(fwd < self.arcs.len(), "edge id out of range");
        self.original_cap[id.0] - self.arcs[fwd].cap
    }

    /// Resets all flows to zero, keeping the topology.
    pub fn reset_flow(&mut self) {
        for (k, cap) in self.original_cap.iter().enumerate() {
            self.arcs[2 * k].cap = *cap;
            self.arcs[2 * k + 1].cap = 0;
        }
    }

    /// Computes initial potentials with Bellman–Ford from `source`.
    ///
    /// Unreachable nodes keep potential `+∞` (they can never lie on an
    /// augmenting path). Returns an error if a negative cycle reachable
    /// from `source` exists.
    fn bellman_ford(&self, source: usize) -> Result<Vec<f64>, OptimError> {
        let mut dist = vec![f64::INFINITY; self.n];
        dist[source] = 0.0;
        for round in 0..self.n {
            let mut changed = false;
            for (idx, arc) in self.arcs.iter().enumerate() {
                if arc.cap <= 0 {
                    continue;
                }
                // Find the tail of this arc: it's the head of its pair.
                let tail = self.arcs[idx ^ 1].to;
                if dist[tail].is_finite() && dist[tail] + arc.cost < dist[arc.to] - COST_EPS {
                    dist[arc.to] = dist[tail] + arc.cost;
                    changed = true;
                }
            }
            if !changed {
                return Ok(dist);
            }
            if round + 1 == self.n && changed {
                return Err(OptimError::invalid(
                    "negative-cost cycle detected; min-cost flow undefined",
                ));
            }
        }
        Ok(dist)
    }

    /// Dijkstra on reduced costs. Returns (distance, predecessor-arc) maps.
    fn dijkstra(&self, source: usize, potential: &[f64]) -> (Vec<f64>, Vec<Option<usize>>) {
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;

        #[derive(PartialEq)]
        struct Entry(f64, usize);
        impl Eq for Entry {}
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> Ordering {
                // Min-heap on cost.
                other
                    .0
                    .partial_cmp(&self.0)
                    .unwrap_or(Ordering::Equal)
                    .then_with(|| other.1.cmp(&self.1))
            }
        }

        let mut dist = vec![f64::INFINITY; self.n];
        let mut prev: Vec<Option<usize>> = vec![None; self.n];
        let mut heap = BinaryHeap::new();
        dist[source] = 0.0;
        heap.push(Entry(0.0, source));
        while let Some(Entry(d, u)) = heap.pop() {
            if d > dist[u] + COST_EPS {
                continue;
            }
            for &arc_idx in &self.adj[u] {
                let arc = &self.arcs[arc_idx];
                if arc.cap <= 0 || !potential[arc.to].is_finite() {
                    continue;
                }
                let reduced = arc.cost + potential[u] - potential[arc.to];
                debug_assert!(
                    reduced >= -1e-6,
                    "negative reduced cost {reduced} on arc {arc_idx}"
                );
                let nd = d + reduced.max(0.0);
                if nd < dist[arc.to] - COST_EPS {
                    dist[arc.to] = nd;
                    prev[arc.to] = Some(arc_idx);
                    heap.push(Entry(nd, arc.to));
                }
            }
        }
        (dist, prev)
    }

    /// Solves a min-cost-flow problem from `source` to `sink`.
    ///
    /// Flows persist on the network afterwards (read them with
    /// [`FlowNetwork::flow`]); call [`FlowNetwork::reset_flow`] to solve
    /// again from scratch.
    ///
    /// # Errors
    ///
    /// * [`OptimError::InvalidInput`] for bad endpoints or a negative
    ///   cycle.
    /// * [`OptimError::Infeasible`] if [`FlowGoal::Exact`] cannot be met.
    pub fn solve(
        &mut self,
        source: usize,
        sink: usize,
        goal: FlowGoal,
    ) -> Result<FlowResult, OptimError> {
        if source >= self.n || sink >= self.n {
            return Err(OptimError::invalid("source or sink out of range"));
        }
        if source == sink {
            return Err(OptimError::invalid("source equals sink"));
        }

        let mut potential = self.bellman_ford(source)?;
        let mut total_flow: i64 = 0;
        let mut total_cost = 0.0;
        let mut augmentations = 0usize;

        let target = match goal {
            FlowGoal::Exact(f) if f < 0 => {
                return Err(OptimError::invalid("negative flow target"));
            }
            FlowGoal::Exact(f) => Some(f),
            _ => None,
        };

        loop {
            if let Some(t) = target {
                if total_flow >= t {
                    break;
                }
            }
            let (dist, prev) = self.dijkstra(source, &potential);
            if !dist[sink].is_finite() {
                break; // no augmenting path remains
            }
            // True path cost (undo the potential shift).
            let path_cost = dist[sink] + potential[sink] - potential[source];
            if matches!(goal, FlowGoal::WhileProfitable) && path_cost >= -COST_EPS {
                break;
            }

            // Bottleneck along the path.
            let mut bottleneck = i64::MAX;
            let mut v = sink;
            while v != source {
                let arc_idx = prev[v].expect("path reconstruction");
                bottleneck = bottleneck.min(self.arcs[arc_idx].cap);
                v = self.arcs[arc_idx ^ 1].to;
            }
            if let Some(t) = target {
                bottleneck = bottleneck.min(t - total_flow);
            }
            debug_assert!(bottleneck > 0);

            // Apply the augmentation.
            let mut v = sink;
            while v != source {
                let arc_idx = prev[v].expect("path reconstruction");
                self.arcs[arc_idx].cap -= bottleneck;
                self.arcs[arc_idx ^ 1].cap += bottleneck;
                v = self.arcs[arc_idx ^ 1].to;
            }
            total_flow += bottleneck;
            total_cost += path_cost * bottleneck as f64;
            augmentations += 1;

            // Johnson potential update; keep unreachable nodes at +∞.
            for i in 0..self.n {
                if dist[i].is_finite() && potential[i].is_finite() {
                    potential[i] += dist[i];
                }
            }
        }

        if let Some(t) = target {
            if total_flow < t {
                return Err(OptimError::infeasible(format!(
                    "requested flow {t} but max routable is {total_flow}"
                )));
            }
        }
        Ok(FlowResult {
            flow: total_flow,
            cost: total_cost,
            augmentations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_exact_flow_cheapest_first() {
        let mut net = FlowNetwork::new(2);
        let a = net.add_edge(0, 1, 2, 3.0).unwrap();
        let b = net.add_edge(0, 1, 2, 1.0).unwrap();
        let r = net.solve(0, 1, FlowGoal::Exact(3)).unwrap();
        assert_eq!(r.flow, 3);
        assert!((r.cost - (2.0 * 1.0 + 1.0 * 3.0)).abs() < 1e-9);
        assert_eq!(net.flow(b), 2);
        assert_eq!(net.flow(a), 1);
    }

    #[test]
    fn exact_flow_infeasible_when_capacity_short() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 1, 0.0).unwrap();
        let err = net.solve(0, 1, FlowGoal::Exact(5));
        assert!(matches!(err, Err(OptimError::Infeasible { .. })));
    }

    #[test]
    fn max_flow_mode_saturates() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 3, 0.0).unwrap();
        net.add_edge(0, 2, 2, 0.0).unwrap();
        net.add_edge(1, 3, 2, 0.0).unwrap();
        net.add_edge(2, 3, 3, 0.0).unwrap();
        net.add_edge(1, 2, 5, 0.0).unwrap();
        let r = net.solve(0, 3, FlowGoal::Max).unwrap();
        assert_eq!(r.flow, 5);
    }

    #[test]
    fn while_profitable_stops_at_zero_marginal_cost() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 1, -2.0).unwrap();
        net.add_edge(0, 1, 1, -0.5).unwrap();
        net.add_edge(0, 1, 1, 1.0).unwrap();
        let r = net.solve(0, 1, FlowGoal::WhileProfitable).unwrap();
        assert_eq!(r.flow, 2);
        assert!((r.cost + 2.5).abs() < 1e-9);
    }

    #[test]
    fn negative_costs_on_dag_handled() {
        // Diamond where the negative path must be found through potentials.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1, 5.0).unwrap();
        net.add_edge(1, 3, 1, 5.0).unwrap();
        net.add_edge(0, 2, 1, -3.0).unwrap();
        net.add_edge(2, 3, 1, -4.0).unwrap();
        let r = net.solve(0, 3, FlowGoal::Exact(1)).unwrap();
        assert!((r.cost + 7.0).abs() < 1e-9);
    }

    #[test]
    fn residual_rerouting_finds_global_optimum() {
        // Classic example where the second augmentation must push flow
        // back across the middle arc.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1, 1.0).unwrap();
        net.add_edge(0, 2, 1, 4.0).unwrap();
        let mid = net.add_edge(1, 2, 1, 0.0).unwrap();
        net.add_edge(1, 3, 1, 10.0).unwrap();
        net.add_edge(2, 3, 1, 1.0).unwrap();
        let r = net.solve(0, 3, FlowGoal::Exact(2)).unwrap();
        // Optimal: 0→1→3 is too expensive; send 0→1→2→3 (cost 2) and
        // 0→2 is then blocked... max flow 2 must use both sink arcs:
        // 0→1→3 (11) + 0→2→3 (5) = 16, or 0→1→2→3 (2) + 0→2→? no.
        // Best: 0→1→2→3 = 2 and 0→2→3 would need cap on 2→3 which is 1.
        // So 2 units: 0→1→3 + 0→2→3 = 16 vs 0→1→2→3 + 0→2-X. The former
        // is forced once 2→3 saturates; SSP must get cost 16.
        assert_eq!(r.flow, 2);
        assert!((r.cost - 16.0).abs() < 1e-9, "cost={}", r.cost);
        let _ = mid;
    }

    #[test]
    fn rejects_invalid_edges_and_endpoints() {
        let mut net = FlowNetwork::new(2);
        assert!(net.add_edge(0, 5, 1, 0.0).is_err());
        assert!(net.add_edge(0, 1, -1, 0.0).is_err());
        assert!(net.add_edge(0, 1, 1, f64::NAN).is_err());
        assert!(net.solve(0, 0, FlowGoal::Max).is_err());
        assert!(net.solve(0, 9, FlowGoal::Max).is_err());
    }

    #[test]
    fn detects_negative_cycle() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 1, -1.0).unwrap();
        net.add_edge(1, 2, 1, -1.0).unwrap();
        net.add_edge(2, 0, 1, -1.0).unwrap();
        assert!(net.solve(0, 1, FlowGoal::Max).is_err());
    }

    #[test]
    fn reset_flow_allows_resolve() {
        let mut net = FlowNetwork::new(2);
        let e = net.add_edge(0, 1, 2, 1.0).unwrap();
        let r1 = net.solve(0, 1, FlowGoal::Max).unwrap();
        net.reset_flow();
        assert_eq!(net.flow(e), 0);
        let r2 = net.solve(0, 1, FlowGoal::Max).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn unreachable_sink_yields_zero_flow() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 1, 1.0).unwrap();
        let r = net.solve(0, 2, FlowGoal::Max).unwrap();
        assert_eq!(r.flow, 0);
        assert_eq!(r.cost, 0.0);
    }
}
