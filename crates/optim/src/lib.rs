//! Optimization substrate for the `jocal` workspace.
//!
//! This crate implements, from scratch, every numerical building block the
//! ICDCS 2019 paper *"Joint Online Edge Caching and Load Balancing for
//! Mobile Data Offloading in 5G Networks"* relies on:
//!
//! * [`linalg`] — small dense linear-algebra toolkit (vectors, matrices,
//!   LU factorization with partial pivoting).
//! * [`simplex`] — a bounded-variable primal simplex solver for linear
//!   programs in inequality form. The paper solves the relaxed caching
//!   sub-problem `P1` with the simplex method; this is that solver.
//! * [`mcmf`] — a min-cost-flow solver (successive shortest paths with
//!   Johnson potentials, Bellman–Ford initialization for negative costs).
//!   Because `P1` is an integral network LP (Theorem 1 of the paper rests
//!   on total unimodularity), it can be solved exactly and very fast as a
//!   flow problem; `jocal-core` builds that formulation on top of this
//!   module.
//! * [`pgd`] — projected-gradient descent (with backtracking line search
//!   and optional FISTA acceleration) for the smooth convex load-balancing
//!   sub-problem `P2`.
//! * [`projection`] — Euclidean projections onto boxes and onto the
//!   intersection of a box with a weighted budget constraint
//!   `Σ w_i v_i ≤ b` (bisection on the Lagrange multiplier).
//! * [`subgradient`] — dual-ascent machinery and the diminishing step-size
//!   schedules used by the paper's primal-dual Algorithm 1.
//!
//! # Example
//!
//! Solve a tiny LP with the simplex module:
//!
//! ```
//! use jocal_optim::simplex::{LinearProgram, Sense};
//!
//! // maximize x0 + 2 x1  s.t.  x0 + x1 <= 4, x1 <= 3, 0 <= x <= 10
//! let mut lp = LinearProgram::new(2, Sense::Maximize);
//! lp.set_objective(vec![1.0, 2.0]);
//! lp.add_le_constraint(vec![(0, 1.0), (1, 1.0)], 4.0);
//! lp.add_le_constraint(vec![(1, 1.0)], 3.0);
//! lp.set_bounds(0, 0.0, 10.0);
//! lp.set_bounds(1, 0.0, 10.0);
//! let solution = lp.solve()?;
//! assert!((solution.objective - 7.0).abs() < 1e-9);
//! # Ok::<(), jocal_optim::OptimError>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod bisection;
pub mod error;
pub mod linalg;
pub mod mcmf;
pub mod pgd;
pub mod projection;
pub mod simplex;
pub mod subgradient;

pub use error::OptimError;

/// Default numeric tolerance used across the crate when comparing floats.
pub const DEFAULT_TOL: f64 = 1e-9;

/// Returns `true` when two floats are equal within `tol`.
///
/// ```
/// assert!(jocal_optim::approx_eq(1.0, 1.0 + 1e-12, 1e-9));
/// ```
#[inline]
#[must_use]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}
