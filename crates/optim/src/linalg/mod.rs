//! Small dense linear-algebra toolkit.
//!
//! The solvers in this crate only need modest dense kernels: row-major
//! matrices, dot products, `y ← A x`, `y ← Aᵀ x`, and an LU factorization
//! with partial pivoting for solving basis systems inside the simplex
//! method. Everything is implemented here to keep the workspace free of
//! external linear-algebra dependencies.

mod lu;

pub use lu::LuFactorization;

use crate::OptimError;
use std::fmt;
use std::ops::{Index, IndexMut};

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// ```
/// assert_eq!(jocal_optim::linalg::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
#[inline]
#[must_use]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
///
/// ```
/// assert!((jocal_optim::linalg::norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
/// ```
#[inline]
#[must_use]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Infinity norm (largest absolute entry) of a slice; `0.0` when empty.
#[inline]
#[must_use]
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |acc, &x| acc.max(x.abs()))
}

/// `y ← y + alpha * x` (BLAS `axpy`).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scales a slice in place: `x ← alpha * x`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Dense row-major matrix of `f64`.
///
/// ```
/// use jocal_optim::linalg::Matrix;
/// let mut a = Matrix::zeros(2, 2);
/// a[(0, 0)] = 1.0;
/// a[(1, 1)] = 2.0;
/// assert_eq!(a.matvec(&[3.0, 4.0]), vec![3.0, 8.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::InvalidInput`] if `data.len() != rows * cols`
    /// or any entry is not finite.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, OptimError> {
        if data.len() != rows * cols {
            return Err(OptimError::invalid(format!(
                "matrix data length {} does not match {rows}x{cols}",
                data.len()
            )));
        }
        if data.iter().any(|v| !v.is_finite()) {
            return Err(OptimError::invalid("matrix contains a non-finite entry"));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    #[inline]
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    #[must_use]
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column index {j} out of bounds");
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Matrix-vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    #[must_use]
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        (0..self.rows).map(|i| dot(self.row(i), x)).collect()
    }

    /// Transposed matrix-vector product `Aᵀ x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    #[must_use]
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_t: dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi != 0.0 {
                axpy(xi, self.row(i), &mut y);
            }
        }
        y
    }

    /// Dense matrix product `A B`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    #[must_use]
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul: inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        out
    }

    /// Transpose copy.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Computes an LU factorization with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::Singular`] if the matrix is (numerically)
    /// singular and [`OptimError::InvalidInput`] if it is not square.
    pub fn lu(&self) -> Result<LuFactorization, OptimError> {
        LuFactorization::compute(self)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(12) {
                write!(f, "{:9.4}", self[(i, j)])?;
                if j + 1 < self.cols.min(12) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 12 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, -2.0, 3.0], &[4.0, 5.0, 6.0]), 12.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(norm_inf(&[-7.0, 2.0, 5.0]), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
        scale(0.5, &mut y);
        assert_eq!(y, vec![3.5, -0.5]);
    }

    #[test]
    fn matvec_matches_manual() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(a.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn from_rows_validates() {
        assert!(Matrix::from_rows(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_rows(1, 2, vec![f64::NAN, 0.0]).is_err());
    }

    #[test]
    fn debug_output_nonempty() {
        let m = Matrix::identity(3);
        assert!(format!("{m:?}").contains("Matrix 3x3"));
    }
}
