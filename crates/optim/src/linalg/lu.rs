//! LU factorization with partial pivoting.

use super::Matrix;
use crate::OptimError;

/// LU factorization `P A = L U` of a square matrix, with partial pivoting.
///
/// Used by the simplex solver to solve basis systems `B x = b` and
/// `Bᵀ y = c` without forming explicit inverses.
///
/// ```
/// use jocal_optim::linalg::{LuFactorization, Matrix};
/// let a = Matrix::from_rows(2, 2, vec![4.0, 3.0, 6.0, 3.0])?;
/// let lu = a.lu()?;
/// let x = lu.solve(&[10.0, 12.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-9 && (x[1] - 2.0).abs() < 1e-9);
/// # Ok::<(), jocal_optim::OptimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LuFactorization {
    /// Packed LU factors (L strictly below the diagonal with implicit unit
    /// diagonal, U on and above).
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row stored at position `i`.
    perm: Vec<usize>,
    n: usize,
}

/// Pivot magnitudes below this threshold are treated as zero.
const PIVOT_TOL: f64 = 1e-12;

impl LuFactorization {
    /// Factorizes `a` as `P A = L U`.
    ///
    /// # Errors
    ///
    /// * [`OptimError::InvalidInput`] if `a` is not square.
    /// * [`OptimError::Singular`] if a pivot smaller than `1e-12` in
    ///   magnitude is encountered.
    pub fn compute(a: &Matrix) -> Result<Self, OptimError> {
        if a.rows() != a.cols() {
            return Err(OptimError::invalid(format!(
                "LU requires a square matrix, got {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();

        for k in 0..n {
            // Select pivot row by largest absolute value in column k.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < PIVOT_TOL {
                return Err(OptimError::Singular { pivot: k });
            }
            if pivot_row != k {
                perm.swap(k, pivot_row);
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                if factor != 0.0 {
                    for j in (k + 1)..n {
                        let ukj = lu[(k, j)];
                        lu[(i, j)] -= factor * ukj;
                    }
                }
            }
        }
        Ok(LuFactorization { lu, perm, n })
    }

    /// Dimension of the factored matrix.
    #[inline]
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::InvalidInput`] if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, OptimError> {
        if b.len() != self.n {
            return Err(OptimError::invalid(format!(
                "rhs length {} does not match dimension {}",
                b.len(),
                self.n
            )));
        }
        // Apply permutation: y = P b.
        let mut x: Vec<f64> = self.perm.iter().map(|&i| b[i]).collect();
        // Forward substitution with unit-lower L.
        for i in 1..self.n {
            let mut sum = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                sum -= self.lu[(i, j)] * xj;
            }
            x[i] = sum;
        }
        // Backward substitution with U.
        for i in (0..self.n).rev() {
            let mut sum = x[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                sum -= self.lu[(i, j)] * xj;
            }
            x[i] = sum / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves the transposed system `Aᵀ x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::InvalidInput`] if `b.len() != dim()`.
    pub fn solve_transposed(&self, b: &[f64]) -> Result<Vec<f64>, OptimError> {
        if b.len() != self.n {
            return Err(OptimError::invalid(format!(
                "rhs length {} does not match dimension {}",
                b.len(),
                self.n
            )));
        }
        // Aᵀ = Uᵀ Lᵀ P, so solve Uᵀ z = b, then Lᵀ w = z, then x = Pᵀ w.
        let mut z = b.to_vec();
        // Forward substitution with Uᵀ (lower triangular).
        for i in 0..self.n {
            let mut sum = z[i];
            for (j, &zj) in z.iter().enumerate().take(i) {
                sum -= self.lu[(j, i)] * zj;
            }
            z[i] = sum / self.lu[(i, i)];
        }
        // Backward substitution with Lᵀ (unit upper triangular).
        for i in (0..self.n).rev() {
            let mut sum = z[i];
            for (j, &zj) in z.iter().enumerate().skip(i + 1) {
                sum -= self.lu[(j, i)] * zj;
            }
            z[i] = sum;
        }
        // Undo the permutation.
        let mut x = vec![0.0; self.n];
        for (pos, &orig) in self.perm.iter().enumerate() {
            x[orig] = z[pos];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::dot;

    fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        a.matvec(x)
            .iter()
            .zip(b)
            .map(|(ax, bi)| (ax - bi).abs())
            .fold(0.0_f64, f64::max)
    }

    #[test]
    fn solves_small_system() {
        let a = Matrix::from_rows(3, 3, vec![2.0, 1.0, 1.0, 1.0, 3.0, 2.0, 1.0, 0.0, 0.0]).unwrap();
        let b = [4.0, 5.0, 6.0];
        let lu = a.lu().unwrap();
        let x = lu.solve(&b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-9);
    }

    #[test]
    fn solves_transposed_system() {
        let a =
            Matrix::from_rows(3, 3, vec![4.0, -2.0, 1.0, 3.0, 6.0, -4.0, 2.0, 1.0, 8.0]).unwrap();
        let b = [1.0, 2.0, 3.0];
        let lu = a.lu().unwrap();
        let x = lu.solve_transposed(&b).unwrap();
        let at = a.transpose();
        assert!(residual(&at, &x, &b) < 1e-9);
    }

    #[test]
    fn rejects_singular() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert!(matches!(a.lu(), Err(OptimError::Singular { .. })));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(a.lu(), Err(OptimError::InvalidInput { .. })));
    }

    #[test]
    fn rejects_bad_rhs_length() {
        let a = Matrix::identity(3);
        let lu = a.lu().unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
        assert!(lu.solve_transposed(&[1.0]).is_err());
    }

    #[test]
    fn permutation_handled_for_zero_leading_pivot() {
        // Leading entry zero forces a row swap.
        let a = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let lu = a.lu().unwrap();
        let x = lu.solve(&[5.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn random_systems_solve_accurately() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for n in [1usize, 2, 5, 10, 25] {
            let data: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-5.0..5.0)).collect();
            // Diagonal boost keeps the matrix comfortably nonsingular.
            let mut a = Matrix::from_rows(n, n, data).unwrap();
            for i in 0..n {
                a[(i, i)] += 10.0;
            }
            let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect();
            let b = a.matvec(&x_true);
            let lu = a.lu().unwrap();
            let x = lu.solve(&b).unwrap();
            for (xi, ti) in x.iter().zip(&x_true) {
                assert!((xi - ti).abs() < 1e-8, "n={n}: {xi} vs {ti}");
            }
            // Check transposed solve against an inner-product identity:
            // ⟨x, Aᵀ y⟩ = ⟨A x, y⟩ for arbitrary y.
            let y: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let aty = lu.solve_transposed(&y).unwrap();
            // aty solves Aᵀ aty = y, i.e. ⟨b', aty⟩ relationships hold.
            let lhs = dot(&a.matvec_t(&aty), &x_true);
            let rhs = dot(&y, &x_true);
            // Aᵀ aty = y exactly means matvec_t(aty) ≈ y.
            assert!((lhs - rhs).abs() < 1e-6);
        }
    }
}
