//! Dense two-phase primal simplex solver for linear programs.
//!
//! The paper solves the relaxed caching sub-problem `P1` "by standard
//! linear programming methods, simplex method is applied in this paper"
//! (Section III-B). This module is that solver: a from-scratch tableau
//! simplex supporting
//!
//! * minimization and maximization,
//! * `≤`, `≥` and `=` constraints,
//! * general finite lower bounds and finite/infinite upper bounds
//!   (handled by shifting and explicit bound rows),
//! * free variables (handled by splitting into positive/negative parts),
//! * two-phase initialization with artificial variables, and
//! * Bland's anti-cycling rule as a fallback after a Dantzig phase.
//!
//! `jocal-core` uses it to cross-check the min-cost-flow solution of `P1`
//! on small instances and as a reference oracle in tests; the flow solver
//! is the production path for large horizons.

use crate::linalg::Matrix;
use crate::OptimError;

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ConstraintOp {
    Le,
    Ge,
    Eq,
}

#[derive(Debug, Clone)]
struct Constraint {
    terms: Vec<(usize, f64)>,
    op: ConstraintOp,
    rhs: f64,
}

/// Optimal solution of a linear program.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal values of the original variables.
    pub x: Vec<f64>,
    /// Objective value (in the problem's own sense).
    pub objective: f64,
    /// Total simplex pivots across both phases.
    pub iterations: usize,
}

/// A linear program under construction.
///
/// See the [crate-level example](crate) for usage.
#[derive(Debug, Clone)]
pub struct LinearProgram {
    n: usize,
    sense: Sense,
    objective: Vec<f64>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    constraints: Vec<Constraint>,
}

const EPS: f64 = 1e-9;

impl LinearProgram {
    /// Creates a program with `n_vars` variables, default bounds `[0, +∞)`
    /// and an all-zero objective.
    #[must_use]
    pub fn new(n_vars: usize, sense: Sense) -> Self {
        LinearProgram {
            n: n_vars,
            sense,
            objective: vec![0.0; n_vars],
            lower: vec![0.0; n_vars],
            upper: vec![f64::INFINITY; n_vars],
            constraints: Vec::new(),
        }
    }

    /// Number of variables.
    #[inline]
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Number of explicit constraints (bound rows not included).
    #[inline]
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Sets the full objective vector.
    ///
    /// # Panics
    ///
    /// Panics if `c.len()` differs from the variable count.
    pub fn set_objective(&mut self, c: Vec<f64>) {
        assert_eq!(c.len(), self.n, "objective length mismatch");
        self.objective = c;
    }

    /// Sets a single objective coefficient.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn set_objective_coeff(&mut self, var: usize, coeff: f64) {
        assert!(var < self.n, "variable index out of range");
        self.objective[var] = coeff;
    }

    /// Sets bounds `lo ≤ x_var ≤ hi`. `lo` may be `-∞` (free below) and
    /// `hi` may be `+∞`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn set_bounds(&mut self, var: usize, lo: f64, hi: f64) {
        assert!(var < self.n, "variable index out of range");
        self.lower[var] = lo;
        self.upper[var] = hi;
    }

    /// Adds `Σ terms ≤ rhs`.
    pub fn add_le_constraint(&mut self, terms: Vec<(usize, f64)>, rhs: f64) {
        self.constraints.push(Constraint {
            terms,
            op: ConstraintOp::Le,
            rhs,
        });
    }

    /// Adds `Σ terms ≥ rhs`.
    pub fn add_ge_constraint(&mut self, terms: Vec<(usize, f64)>, rhs: f64) {
        self.constraints.push(Constraint {
            terms,
            op: ConstraintOp::Ge,
            rhs,
        });
    }

    /// Adds `Σ terms = rhs`.
    pub fn add_eq_constraint(&mut self, terms: Vec<(usize, f64)>, rhs: f64) {
        self.constraints.push(Constraint {
            terms,
            op: ConstraintOp::Eq,
            rhs,
        });
    }

    fn validate(&self) -> Result<(), OptimError> {
        for (j, c) in self.objective.iter().enumerate() {
            if !c.is_finite() {
                return Err(OptimError::invalid(format!(
                    "objective coefficient {j} is not finite"
                )));
            }
        }
        for j in 0..self.n {
            if self.lower[j] > self.upper[j] + EPS {
                return Err(OptimError::invalid(format!(
                    "variable {j} has inverted bounds [{}, {}]",
                    self.lower[j], self.upper[j]
                )));
            }
            if self.lower[j].is_nan() || self.upper[j].is_nan() {
                return Err(OptimError::invalid(format!("variable {j} has NaN bound")));
            }
        }
        for (i, con) in self.constraints.iter().enumerate() {
            if !con.rhs.is_finite() {
                return Err(OptimError::invalid(format!(
                    "constraint {i} has non-finite rhs"
                )));
            }
            for &(j, a) in &con.terms {
                if j >= self.n {
                    return Err(OptimError::invalid(format!(
                        "constraint {i} references variable {j} out of range"
                    )));
                }
                if !a.is_finite() {
                    return Err(OptimError::invalid(format!(
                        "constraint {i} has non-finite coefficient on variable {j}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Solves the program.
    ///
    /// # Errors
    ///
    /// * [`OptimError::InvalidInput`] for malformed programs.
    /// * [`OptimError::Infeasible`] when no feasible point exists.
    /// * [`OptimError::Unbounded`] when the objective diverges.
    /// * [`OptimError::IterationLimit`] if the pivot budget is exhausted
    ///   (pathological cycling; never observed with Bland fallback).
    pub fn solve(&self) -> Result<LpSolution, OptimError> {
        self.validate()?;

        // --- Normalize variables ------------------------------------------------
        // Each original variable maps to either one shifted variable
        // (x = lo + x', x' ≥ 0) or, when lo = -∞, a split pair
        // (x = x⁺ − x⁻). Finite upper bounds become explicit rows.
        #[derive(Clone, Copy)]
        enum VarMap {
            Shifted { col: usize, lo: f64 },
            Split { pos: usize, neg: usize },
        }
        let mut maps: Vec<VarMap> = Vec::with_capacity(self.n);
        let mut ncols = 0usize;
        for j in 0..self.n {
            if self.lower[j].is_finite() {
                maps.push(VarMap::Shifted {
                    col: ncols,
                    lo: self.lower[j],
                });
                ncols += 1;
            } else {
                maps.push(VarMap::Split {
                    pos: ncols,
                    neg: ncols + 1,
                });
                ncols += 2;
            }
        }

        // Assemble rows: explicit constraints, then finite upper bounds.
        struct Row {
            coeffs: Vec<(usize, f64)>,
            op: ConstraintOp,
            rhs: f64,
        }
        let mut rows: Vec<Row> = Vec::new();
        for con in &self.constraints {
            let mut coeffs: Vec<(usize, f64)> = Vec::with_capacity(con.terms.len() * 2);
            let mut rhs = con.rhs;
            for &(j, a) in &con.terms {
                match maps[j] {
                    VarMap::Shifted { col, lo } => {
                        coeffs.push((col, a));
                        rhs -= a * lo;
                    }
                    VarMap::Split { pos, neg } => {
                        coeffs.push((pos, a));
                        coeffs.push((neg, -a));
                    }
                }
            }
            rows.push(Row {
                coeffs,
                op: con.op,
                rhs,
            });
        }
        for (j, map) in maps.iter().enumerate() {
            if self.upper[j].is_finite() {
                match *map {
                    VarMap::Shifted { col, lo } => {
                        // x' ≤ hi − lo. Skip fixed variables with zero range:
                        // the row still keeps them at 0, which is correct.
                        rows.push(Row {
                            coeffs: vec![(col, 1.0)],
                            op: ConstraintOp::Le,
                            rhs: self.upper[j] - lo,
                        });
                    }
                    VarMap::Split { pos, neg } => {
                        rows.push(Row {
                            coeffs: vec![(pos, 1.0), (neg, -1.0)],
                            op: ConstraintOp::Le,
                            rhs: self.upper[j],
                        });
                    }
                }
            }
        }

        let m = rows.len();

        // Objective in minimization sense over the normalized columns.
        let sign = match self.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        let mut cost = vec![0.0; ncols];
        let mut obj_constant = 0.0;
        for (j, map) in maps.iter().enumerate() {
            let cj = sign * self.objective[j];
            match *map {
                VarMap::Shifted { col, lo } => {
                    cost[col] += cj;
                    obj_constant += cj * lo;
                }
                VarMap::Split { pos, neg } => {
                    cost[pos] += cj;
                    cost[neg] -= cj;
                }
            }
        }

        // --- Build the tableau --------------------------------------------------
        // Columns: structural | slacks/surplus | artificials | rhs.
        let mut n_slack = 0usize;
        for row in &rows {
            if !matches!(row.op, ConstraintOp::Eq) {
                n_slack += 1;
            }
        }
        // Upper bound on artificial count: one per row.
        let total_cols_upper = ncols + n_slack + m;
        let mut tab = Matrix::zeros(m, total_cols_upper + 1);
        let rhs_col = total_cols_upper;

        let mut basis = vec![usize::MAX; m];
        let mut slack_cursor = ncols;
        let mut art_cursor = ncols + n_slack;
        let mut artificials: Vec<usize> = Vec::new();

        for (i, row) in rows.iter().enumerate() {
            let mut flip = 1.0;
            if row.rhs < 0.0 {
                flip = -1.0;
            }
            for &(j, a) in &row.coeffs {
                tab[(i, j)] += flip * a;
            }
            tab[(i, rhs_col)] = flip * row.rhs;
            match row.op {
                ConstraintOp::Le => {
                    tab[(i, slack_cursor)] = flip;
                    if flip > 0.0 {
                        basis[i] = slack_cursor;
                    }
                    slack_cursor += 1;
                }
                ConstraintOp::Ge => {
                    tab[(i, slack_cursor)] = -flip;
                    if flip < 0.0 {
                        basis[i] = slack_cursor;
                    }
                    slack_cursor += 1;
                }
                ConstraintOp::Eq => {}
            }
            if basis[i] == usize::MAX {
                tab[(i, art_cursor)] = 1.0;
                basis[i] = art_cursor;
                artificials.push(art_cursor);
                art_cursor += 1;
            }
        }
        let ncols_total = art_cursor;

        let max_pivots = 200 + 50 * (m + ncols_total);
        let mut pivots = 0usize;

        // --- Phase 1 -------------------------------------------------------------
        if !artificials.is_empty() {
            let mut phase1_cost = vec![0.0; ncols_total];
            for &a in &artificials {
                phase1_cost[a] = 1.0;
            }
            let status = run_simplex(
                &mut tab,
                &mut basis,
                &phase1_cost,
                ncols_total,
                rhs_col,
                max_pivots,
                &mut pivots,
            )?;
            if status == SimplexStatus::Unbounded {
                // Phase-1 objective is bounded below by 0; cannot happen.
                return Err(OptimError::invalid(
                    "internal error: phase-1 reported unbounded",
                ));
            }
            let phase1_obj: f64 = basis
                .iter()
                .enumerate()
                .map(|(i, &b)| phase1_cost[b] * tab[(i, rhs_col)])
                .sum();
            if phase1_obj > 1e-7 {
                return Err(OptimError::infeasible(format!(
                    "phase-1 optimum {phase1_obj:.3e} > 0"
                )));
            }
            // Pivot lingering artificials out of the basis when possible.
            for i in 0..m {
                if artificials.contains(&basis[i]) {
                    let mut pivoted = false;
                    for j in 0..ncols {
                        if tab[(i, j)].abs() > 1e-7 {
                            pivot(&mut tab, &mut basis, i, j, rhs_col);
                            pivoted = true;
                            break;
                        }
                    }
                    if !pivoted {
                        // Redundant row; the artificial stays basic at 0,
                        // which is harmless as long as it never re-enters.
                    }
                }
            }
        }

        // --- Phase 2 -------------------------------------------------------------
        let mut phase2_cost = vec![0.0; ncols_total];
        phase2_cost[..ncols].copy_from_slice(&cost[..ncols]);
        // Forbid artificials from re-entering by giving them a huge cost.
        let big = 1e12
            * (1.0
                + cost
                    .iter()
                    .fold(0.0_f64, |acc: f64, &c: &f64| acc.max(c.abs())));
        for &a in &artificials {
            phase2_cost[a] = big;
        }
        let status = run_simplex(
            &mut tab,
            &mut basis,
            &phase2_cost,
            ncols_total,
            rhs_col,
            max_pivots,
            &mut pivots,
        )?;
        if status == SimplexStatus::Unbounded {
            return Err(OptimError::Unbounded { ray: None });
        }

        // --- Extract the solution ------------------------------------------------
        let mut normalized = vec![0.0; ncols_total];
        for (i, &b) in basis.iter().enumerate() {
            normalized[b] = tab[(i, rhs_col)];
        }
        let mut x = vec![0.0; self.n];
        for j in 0..self.n {
            match maps[j] {
                VarMap::Shifted { col, lo } => x[j] = lo + normalized[col],
                VarMap::Split { pos, neg } => x[j] = normalized[pos] - normalized[neg],
            }
        }
        let raw_obj: f64 = (0..ncols).map(|j| cost[j] * normalized[j]).sum::<f64>() + obj_constant;
        let objective = sign * raw_obj;
        Ok(LpSolution {
            x,
            objective,
            iterations: pivots,
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SimplexStatus {
    Optimal,
    Unbounded,
}

/// Performs a pivot on (`row`, `col`).
fn pivot(tab: &mut Matrix, basis: &mut [usize], row: usize, col: usize, rhs_col: usize) {
    let pivot_val = tab[(row, col)];
    debug_assert!(pivot_val.abs() > 1e-12, "pivot on near-zero element");
    let width = rhs_col + 1;
    for j in 0..width {
        tab[(row, j)] /= pivot_val;
    }
    for i in 0..tab.rows() {
        if i == row {
            continue;
        }
        let factor = tab[(i, col)];
        if factor.abs() > 0.0 {
            for j in 0..width {
                let v = tab[(row, j)];
                tab[(i, j)] -= factor * v;
            }
            tab[(i, col)] = 0.0; // kill round-off exactly
        }
    }
    basis[row] = col;
}

/// Runs primal simplex pivots until optimality/unboundedness.
fn run_simplex(
    tab: &mut Matrix,
    basis: &mut [usize],
    cost: &[f64],
    ncols: usize,
    rhs_col: usize,
    max_pivots: usize,
    pivots: &mut usize,
) -> Result<SimplexStatus, OptimError> {
    let m = tab.rows();
    // Reduced costs: z_j - c_j computed from scratch each iteration via the
    // simplex multipliers (dense but robust; problem sizes here are small).
    let bland_threshold = max_pivots / 2;
    loop {
        if *pivots > max_pivots {
            return Err(OptimError::IterationLimit {
                limit: max_pivots,
                residual: f64::NAN,
            });
        }
        // y_i = cost of basic variable in row i.
        // reduced_j = c_j − Σ_i y_i · tab[i][j]
        let use_bland = *pivots > bland_threshold;
        let mut entering: Option<usize> = None;
        let mut best_reduced = -1e-9;
        for j in 0..ncols {
            if basis.contains(&j) {
                continue;
            }
            let mut zj = 0.0;
            for i in 0..m {
                let t = tab[(i, j)];
                if t != 0.0 {
                    zj += cost[basis[i]] * t;
                }
            }
            let reduced = cost[j] - zj;
            if reduced < best_reduced {
                if use_bland {
                    entering = Some(j);
                    break;
                }
                best_reduced = reduced;
                entering = Some(j);
            }
        }
        let Some(col) = entering else {
            return Ok(SimplexStatus::Optimal);
        };

        // Ratio test.
        let mut leaving: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            let a = tab[(i, col)];
            if a > 1e-9 {
                let ratio = tab[(i, rhs_col)] / a;
                if ratio < best_ratio - 1e-12
                    || (use_bland
                        && (ratio - best_ratio).abs() <= 1e-12
                        && leaving.is_some_and(|l| basis[i] < basis[l]))
                {
                    best_ratio = ratio;
                    leaving = Some(i);
                }
            }
        }
        let Some(row) = leaving else {
            return Ok(SimplexStatus::Unbounded);
        };
        pivot(tab, basis, row, col, rhs_col);
        *pivots += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn maximization_with_le_constraints() {
        // Classic: max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18.
        let mut lp = LinearProgram::new(2, Sense::Maximize);
        lp.set_objective(vec![3.0, 5.0]);
        lp.add_le_constraint(vec![(0, 1.0)], 4.0);
        lp.add_le_constraint(vec![(1, 2.0)], 12.0);
        lp.add_le_constraint(vec![(0, 3.0), (1, 2.0)], 18.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 36.0, 1e-7);
        assert_close(s.x[0], 2.0, 1e-7);
        assert_close(s.x[1], 6.0, 1e-7);
    }

    #[test]
    fn minimization_with_ge_constraints_uses_phase1() {
        // min 2x + 3y st x + y >= 4, x >= 1 → (x, y) = (4, 0), obj 8.
        let mut lp = LinearProgram::new(2, Sense::Minimize);
        lp.set_objective(vec![2.0, 3.0]);
        lp.add_ge_constraint(vec![(0, 1.0), (1, 1.0)], 4.0);
        lp.add_ge_constraint(vec![(0, 1.0)], 1.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 8.0, 1e-7);
        assert_close(s.x[0], 4.0, 1e-7);
    }

    #[test]
    fn equality_constraints() {
        // min x + y st x + 2y = 3, x,y >= 0 → (0, 1.5), obj 1.5.
        let mut lp = LinearProgram::new(2, Sense::Minimize);
        lp.set_objective(vec![1.0, 1.0]);
        lp.add_eq_constraint(vec![(0, 1.0), (1, 2.0)], 3.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 1.5, 1e-7);
        assert_close(s.x[1], 1.5, 1e-7);
    }

    #[test]
    fn detects_infeasible() {
        let mut lp = LinearProgram::new(1, Sense::Minimize);
        lp.set_objective(vec![1.0]);
        lp.add_ge_constraint(vec![(0, 1.0)], 5.0);
        lp.add_le_constraint(vec![(0, 1.0)], 1.0);
        assert!(matches!(lp.solve(), Err(OptimError::Infeasible { .. })));
    }

    #[test]
    fn detects_unbounded() {
        let mut lp = LinearProgram::new(1, Sense::Maximize);
        lp.set_objective(vec![1.0]);
        assert!(matches!(lp.solve(), Err(OptimError::Unbounded { .. })));
    }

    #[test]
    fn upper_bounds_respected() {
        let mut lp = LinearProgram::new(2, Sense::Maximize);
        lp.set_objective(vec![1.0, 1.0]);
        lp.set_bounds(0, 0.0, 0.7);
        lp.set_bounds(1, 0.0, 0.4);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 1.1, 1e-7);
    }

    #[test]
    fn shifted_lower_bounds() {
        // min x st x >= 2.5 via bounds.
        let mut lp = LinearProgram::new(1, Sense::Minimize);
        lp.set_objective(vec![1.0]);
        lp.set_bounds(0, 2.5, 10.0);
        let s = lp.solve().unwrap();
        assert_close(s.x[0], 2.5, 1e-7);
    }

    #[test]
    fn negative_lower_bounds() {
        // max -x st x >= -3 → x = -3.
        let mut lp = LinearProgram::new(1, Sense::Maximize);
        lp.set_objective(vec![-1.0]);
        lp.set_bounds(0, -3.0, f64::INFINITY);
        let s = lp.solve().unwrap();
        assert_close(s.x[0], -3.0, 1e-7);
        assert_close(s.objective, 3.0, 1e-7);
    }

    #[test]
    fn free_variables_split() {
        // min |…|-style: min x + 2y st x + y = 1, x free, y >= 0.
        // Optimal pushes x up? obj = x + 2y with y = 1 − x ≥ 0 → obj = 2 − x,
        // x ≤ 1 unbounded below? x free, y ≥ 0 means x ≤ 1; obj = 2 − x
        // minimized at x = 1 → obj 1.
        let mut lp = LinearProgram::new(2, Sense::Minimize);
        lp.set_objective(vec![1.0, 2.0]);
        lp.set_bounds(0, f64::NEG_INFINITY, f64::INFINITY);
        lp.add_eq_constraint(vec![(0, 1.0), (1, 1.0)], 1.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 1.0, 1e-7);
        assert_close(s.x[0], 1.0, 1e-7);
    }

    #[test]
    fn negative_rhs_rows_handled() {
        // x − y ≤ −1 with x, y ∈ [0, 5]: feasible, e.g. (0, 1).
        let mut lp = LinearProgram::new(2, Sense::Minimize);
        lp.set_objective(vec![0.0, 1.0]);
        lp.set_bounds(0, 0.0, 5.0);
        lp.set_bounds(1, 0.0, 5.0);
        lp.add_le_constraint(vec![(0, 1.0), (1, -1.0)], -1.0);
        let s = lp.solve().unwrap();
        assert_close(s.x[1] - s.x[0], 1.0, 1e-7);
        assert_close(s.objective, 1.0, 1e-7);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple redundant constraints through the same vertex.
        let mut lp = LinearProgram::new(2, Sense::Maximize);
        lp.set_objective(vec![1.0, 1.0]);
        lp.add_le_constraint(vec![(0, 1.0), (1, 1.0)], 1.0);
        lp.add_le_constraint(vec![(0, 2.0), (1, 2.0)], 2.0);
        lp.add_le_constraint(vec![(0, 1.0)], 1.0);
        lp.add_le_constraint(vec![(1, 1.0)], 1.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 1.0, 1e-7);
    }

    #[test]
    fn validates_inputs() {
        let mut lp = LinearProgram::new(1, Sense::Minimize);
        lp.set_bounds(0, 2.0, 1.0);
        assert!(lp.solve().is_err());

        let mut lp = LinearProgram::new(1, Sense::Minimize);
        lp.add_le_constraint(vec![(7, 1.0)], 1.0);
        assert!(lp.solve().is_err());

        let mut lp = LinearProgram::new(1, Sense::Minimize);
        lp.add_le_constraint(vec![(0, f64::NAN)], 1.0);
        assert!(lp.solve().is_err());
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // Mirrors the P1 index layout.
    fn caching_shaped_lp_is_integral() {
        // A miniature P1: 3 items, capacity 1, two timeslots, switching
        // cost beta, rewards mu. Constraint matrix is totally unimodular,
        // so the LP optimum is integral.
        // Variables: x[k][t] for k in 0..3, t in 0..2 (cols k*2+t), plus
        // p[k][t] (cols 6 + k*2 + t).
        let beta = 0.5;
        let mu = [[1.0, 0.2], [0.3, 1.5], [0.1, 0.1]];
        let mut lp = LinearProgram::new(12, Sense::Minimize);
        let xcol = |k: usize, t: usize| k * 2 + t;
        let pcol = |k: usize, t: usize| 6 + k * 2 + t;
        for k in 0..3 {
            for t in 0..2 {
                lp.set_objective_coeff(xcol(k, t), -mu[k][t]);
                lp.set_objective_coeff(pcol(k, t), beta);
                lp.set_bounds(xcol(k, t), 0.0, 1.0);
                lp.set_bounds(pcol(k, t), 0.0, f64::INFINITY);
                // p >= x_t - x_{t-1}, with x_{-1} = 0.
                if t == 0 {
                    lp.add_ge_constraint(vec![(pcol(k, t), 1.0), (xcol(k, t), -1.0)], 0.0);
                } else {
                    lp.add_ge_constraint(
                        vec![(pcol(k, t), 1.0), (xcol(k, t), -1.0), (xcol(k, t - 1), 1.0)],
                        0.0,
                    );
                }
            }
        }
        for t in 0..2 {
            lp.add_le_constraint((0..3).map(|k| (xcol(k, t), 1.0)).collect(), 1.0);
        }
        let s = lp.solve().unwrap();
        for k in 0..3 {
            for t in 0..2 {
                let v = s.x[xcol(k, t)];
                assert!(v.abs() < 1e-6 || (v - 1.0).abs() < 1e-6, "x[{k}][{t}]={v}");
            }
        }
        // Optimal plan: item 0 at t=0 (reward 1.0, pay beta), item 1 at
        // t=1 (reward 1.5, pay beta) → objective = -(1.0+1.5) + 2*0.5.
        assert_close(s.objective, -1.5, 1e-6);
    }
}
