//! Error types shared by the optimization solvers.

use std::error::Error;
use std::fmt;

/// Errors produced by the solvers in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OptimError {
    /// The problem has no feasible point.
    Infeasible {
        /// Human-readable description of the violated constraint set.
        detail: String,
    },
    /// The objective is unbounded over the feasible region.
    Unbounded {
        /// Index of the variable/ray along which the objective diverges,
        /// when known.
        ray: Option<usize>,
    },
    /// An iterative method exhausted its iteration budget before reaching
    /// the requested tolerance.
    IterationLimit {
        /// The iteration budget that was exhausted.
        limit: usize,
        /// Best residual / gap achieved when the limit was hit.
        residual: f64,
    },
    /// The input problem is malformed (dimension mismatch, NaN coefficient,
    /// inverted bounds, ...).
    InvalidInput {
        /// Human-readable description of the defect.
        detail: String,
    },
    /// A matrix factorization failed (e.g. singular basis).
    Singular {
        /// Pivot position at which the factorization broke down.
        pivot: usize,
    },
}

impl OptimError {
    /// Convenience constructor for [`OptimError::InvalidInput`].
    pub fn invalid(detail: impl Into<String>) -> Self {
        OptimError::InvalidInput {
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`OptimError::Infeasible`].
    pub fn infeasible(detail: impl Into<String>) -> Self {
        OptimError::Infeasible {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for OptimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimError::Infeasible { detail } => {
                write!(f, "problem is infeasible: {detail}")
            }
            OptimError::Unbounded { ray: Some(j) } => {
                write!(f, "objective is unbounded along variable {j}")
            }
            OptimError::Unbounded { ray: None } => {
                write!(f, "objective is unbounded")
            }
            OptimError::IterationLimit { limit, residual } => write!(
                f,
                "iteration limit {limit} reached with residual {residual:.3e}"
            ),
            OptimError::InvalidInput { detail } => {
                write!(f, "invalid input: {detail}")
            }
            OptimError::Singular { pivot } => {
                write!(f, "singular matrix encountered at pivot {pivot}")
            }
        }
    }
}

impl Error for OptimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let cases = [
            OptimError::infeasible("x0 >= 2 conflicts with x0 <= 1"),
            OptimError::Unbounded { ray: Some(3) },
            OptimError::Unbounded { ray: None },
            OptimError::IterationLimit {
                limit: 100,
                residual: 1e-3,
            },
            OptimError::invalid("objective length 3 != 2 variables"),
            OptimError::Singular { pivot: 7 },
        ];
        for case in cases {
            let text = case.to_string();
            assert!(!text.is_empty());
            assert!(text.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OptimError>();
    }
}
