//! Scalar root finding by bisection on monotone functions.
//!
//! Used by [`crate::projection`] to find the Lagrange multiplier of a
//! budget constraint, and by `jocal-core` to price the SBS bandwidth
//! constraint in the load-balancing sub-problem.

use crate::OptimError;

/// Options controlling a bisection search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BisectionOptions {
    /// Absolute tolerance on the bracketing interval width.
    pub x_tol: f64,
    /// Absolute tolerance on `|f(x)|` for early exit.
    pub f_tol: f64,
    /// Maximum number of halvings.
    pub max_iters: usize,
}

impl Default for BisectionOptions {
    fn default() -> Self {
        BisectionOptions {
            x_tol: 1e-12,
            f_tol: 1e-12,
            max_iters: 200,
        }
    }
}

/// Finds a root of a non-increasing function `f` on `[lo, hi]`.
///
/// Requires `f(lo) >= 0 >= f(hi)` (up to `f_tol`). Returns the midpoint of
/// the final bracket.
///
/// # Errors
///
/// * [`OptimError::InvalidInput`] if the bracket is invalid or the sign
///   condition fails.
///
/// ```
/// use jocal_optim::bisection::{bisect_decreasing, BisectionOptions};
/// let root = bisect_decreasing(|x| 4.0 - x * x, 0.0, 10.0,
///     BisectionOptions::default())?;
/// assert!((root - 2.0).abs() < 1e-9);
/// # Ok::<(), jocal_optim::OptimError>(())
/// ```
pub fn bisect_decreasing(
    mut f: impl FnMut(f64) -> f64,
    mut lo: f64,
    mut hi: f64,
    opts: BisectionOptions,
) -> Result<f64, OptimError> {
    if !(lo.is_finite() && hi.is_finite()) || lo > hi {
        return Err(OptimError::invalid(format!(
            "invalid bisection bracket [{lo}, {hi}]"
        )));
    }
    let f_lo = f(lo);
    let f_hi = f(hi);
    if f_lo < -opts.f_tol {
        return Err(OptimError::invalid(format!(
            "bisect_decreasing: f(lo)={f_lo} is negative; root below bracket"
        )));
    }
    if f_hi > opts.f_tol {
        return Err(OptimError::invalid(format!(
            "bisect_decreasing: f(hi)={f_hi} is positive; root above bracket"
        )));
    }
    for _ in 0..opts.max_iters {
        let mid = 0.5 * (lo + hi);
        let f_mid = f(mid);
        if f_mid.abs() <= opts.f_tol || (hi - lo) <= opts.x_tol {
            return Ok(mid);
        }
        if f_mid > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Expands `hi` geometrically until `f(hi) <= 0`, then bisects.
///
/// Convenience wrapper for multiplier searches where no a-priori upper
/// bound is known. `f` must be non-increasing with `f(lo) >= 0`.
///
/// # Errors
///
/// * [`OptimError::InvalidInput`] if `f(lo) < 0`.
/// * [`OptimError::IterationLimit`] if no sign change is found after 200
///   doublings.
pub fn bisect_decreasing_unbounded(
    mut f: impl FnMut(f64) -> f64,
    lo: f64,
    initial_hi: f64,
    opts: BisectionOptions,
) -> Result<f64, OptimError> {
    let mut hi = initial_hi.max(lo + 1.0);
    let mut doublings = 0usize;
    while f(hi) > opts.f_tol {
        hi = lo + (hi - lo) * 2.0;
        doublings += 1;
        if doublings > 200 {
            return Err(OptimError::IterationLimit {
                limit: 200,
                residual: f(hi),
            });
        }
    }
    bisect_decreasing(f, lo, hi, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_linear_root() {
        let r = bisect_decreasing(|x| 3.0 - x, 0.0, 100.0, BisectionOptions::default()).unwrap();
        assert!((r - 3.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_bracket() {
        assert!(bisect_decreasing(|x| -x, 5.0, 1.0, BisectionOptions::default()).is_err());
        // f(lo) < 0: root is below bracket.
        assert!(bisect_decreasing(|x| -1.0 - x, 0.0, 1.0, BisectionOptions::default()).is_err());
    }

    #[test]
    fn accepts_root_at_boundary() {
        let r = bisect_decreasing(|x| -x, 0.0, 1.0, BisectionOptions::default()).unwrap();
        assert!(r.abs() < 1e-9);
    }

    #[test]
    fn unbounded_expands_bracket() {
        let r = bisect_decreasing_unbounded(|x| 1000.0 - x, 0.0, 1.0, BisectionOptions::default())
            .unwrap();
        assert!((r - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn respects_f_tol_early_exit() {
        let opts = BisectionOptions {
            f_tol: 0.5,
            ..Default::default()
        };
        let r = bisect_decreasing(|x| 2.0 - x, 0.0, 10.0, opts).unwrap();
        assert!((r - 2.0).abs() < 0.5 + 1e-12);
    }
}
