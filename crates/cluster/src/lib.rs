//! Multi-cell sharded serving for the `jocal` workspace.
//!
//! The paper's model (Section II) is one SBS cluster; a metro-scale
//! deployment runs *many* such clusters — cells — each with its own
//! topology, demand process and online policy. This crate scales the
//! streaming engine from `jocal-serve` to `M` cells:
//!
//! * [`Cell`] — the unit of independent state: network, demand source,
//!   policy, serve config and sink. A cell's id is its position in the
//!   input vector; its shard is `id % shards`.
//! * [`ClusterEngine`] — drives every cell over shared slot rounds from
//!   a fixed worker pool (bounded by the shard count and the
//!   [`jocal_core::workspace::Parallelism`] knob), stealing cells
//!   through an atomic claim counter.
//! * [`ClusterReport`] — per-cell [`jocal_serve::engine::ServeReport`]s
//!   plus per-shard aggregates and a cluster rollup, folded in a fixed
//!   order so they reconcile exactly.
//!
//! Cells share nothing mutable (telemetry counters are atomic), so the
//! byte streams a cluster produces are independent of the pool size,
//! and a 1-cell cluster is bit-identical to the single-cell
//! [`jocal_serve::engine::ServeEngine`] — see
//! `jocal-serve/tests/parity.rs`.
//!
//! # Example
//!
//! ```
//! use jocal_cluster::{Cell, ClusterConfig, ClusterEngine};
//! use jocal_core::CostModel;
//! use jocal_online::rhc::RhcPolicy;
//! use jocal_serve::engine::ServeConfig;
//! use jocal_serve::source::TraceSource;
//! use jocal_sim::scenario::ScenarioConfig;
//!
//! let model = CostModel::paper();
//! let cells = (0..2u64)
//!     .map(|i| {
//!         let s = ScenarioConfig::tiny().build(100 + i)?;
//!         Ok(Cell::new(
//!             s.network.clone(),
//!             model,
//!             ServeConfig::new(3, 42 + i),
//!             Box::new(TraceSource::new(s.demand.clone())),
//!             Box::new(RhcPolicy::new(3, Default::default())),
//!         ))
//!     })
//!     .collect::<Result<Vec<_>, Box<dyn std::error::Error>>>()?;
//! let report = ClusterEngine::new(ClusterConfig::new(2)).run(cells)?;
//! assert_eq!(report.rollup.cells, 2);
//! assert_eq!(report.shards.len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod cell;
pub mod engine;
pub mod error;
pub mod report;

pub use cell::Cell;
pub use engine::{ClusterConfig, ClusterEngine};
pub use error::ClusterError;
pub use report::{CellReport, ClusterAggregate, ClusterReport, ShardSummary};
