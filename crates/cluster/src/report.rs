//! Per-shard and cluster-level aggregates.
//!
//! Aggregation is a two-stage deterministic fold: each shard folds its
//! member cells' [`ServeReport`]s **in cell-id order**, and the cluster
//! rollup folds the shard aggregates **in shard order**. Both folds are
//! plain `f64` accumulation in a fixed order, so the rollup reconciles
//! exactly (bitwise) with re-running the same folds — regardless of
//! which worker stepped which cell when.

use jocal_core::accounting::CostBreakdown;
use jocal_serve::engine::ServeReport;
use serde::Serialize;
use std::ops::Add;

/// Totals folded over a set of serve runs (one shard, or the whole
/// cluster).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct ClusterAggregate {
    /// Runs folded in.
    pub cells: usize,
    /// Total slots served.
    pub slots: usize,
    /// Total realized requests.
    pub requests: u64,
    /// Requests served by SBS caches.
    pub sbs_served: f64,
    /// SBS-intended requests spilled to the BS on bandwidth overflow.
    pub spilled: f64,
    /// Requests served by the BS.
    pub bs_served: f64,
    /// `sbs_served / requests`, `0` when idle.
    pub hit_ratio: f64,
    /// Summed cost breakdown.
    pub cost: CostBreakdown,
    /// Slots where the bandwidth repair engaged, summed over runs.
    pub repair_activations: usize,
    /// Worst (largest) empirical competitive ratio observed across the
    /// folded runs (`None` when no run produced a ratio reading).
    pub max_ratio: Option<f64>,
}

impl ClusterAggregate {
    /// Folds one cell's report into the aggregate.
    pub fn fold_cell(&mut self, report: &ServeReport) {
        let s = &report.summary;
        self.cells += 1;
        self.slots += s.slots;
        self.requests += s.requests;
        self.sbs_served += s.sbs_served;
        self.spilled += s.spilled;
        self.bs_served += s.bs_served;
        self.cost = self.cost.add(s.cost);
        self.repair_activations += s.repair_activations;
        self.fold_ratio(report.ratio.as_ref().and_then(|r| r.ratio));
        self.refresh_hit_ratio();
    }

    /// Folds another aggregate (a shard) into this one (the rollup).
    pub fn absorb(&mut self, other: &ClusterAggregate) {
        self.cells += other.cells;
        self.slots += other.slots;
        self.requests += other.requests;
        self.sbs_served += other.sbs_served;
        self.spilled += other.spilled;
        self.bs_served += other.bs_served;
        self.cost = self.cost.add(other.cost);
        self.repair_activations += other.repair_activations;
        self.fold_ratio(other.max_ratio);
        self.refresh_hit_ratio();
    }

    fn fold_ratio(&mut self, ratio: Option<f64>) {
        if let Some(r) = ratio {
            self.max_ratio = Some(self.max_ratio.map_or(r, |m| m.max(r)));
        }
    }

    fn refresh_hit_ratio(&mut self) {
        self.hit_ratio = if self.requests == 0 {
            0.0
        } else {
            self.sbs_served / self.requests as f64
        };
    }
}

/// One shard's aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ShardSummary {
    /// Shard index in `0..shards`.
    pub shard: usize,
    /// Totals folded over the shard's member cells in cell-id order.
    pub totals: ClusterAggregate,
}

/// One cell's outcome within a cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Cell id (position in the `Vec<Cell>` passed to the engine).
    pub cell: usize,
    /// The shard the cell aggregated into (`cell % shards`).
    pub shard: usize,
    /// The cell's own serve report — identical to what a single-cell
    /// [`jocal_serve::engine::ServeEngine`] run would have produced.
    pub report: ServeReport,
}

/// Outcome of a cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Per-cell reports in cell-id order.
    pub cells: Vec<CellReport>,
    /// Per-shard aggregates in shard order (every shard in
    /// `0..shards` appears, including empty ones).
    pub shards: Vec<ShardSummary>,
    /// Cluster-level rollup, folded from the shard aggregates in shard
    /// order.
    pub rollup: ClusterAggregate,
}
