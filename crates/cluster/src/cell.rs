//! The unit of independent state a cluster schedules: one [`Cell`].

use jocal_core::plan::CacheState;
use jocal_core::{CostModel, ShutdownFlag};
use jocal_flightrec::FlightRecorder;
use jocal_online::policy::OnlinePolicy;
use jocal_serve::engine::ServeConfig;
use jocal_serve::metrics::{MetricsSink, NullSink};
use jocal_serve::source::DemandSource;
use jocal_sim::topology::Network;
use std::fmt;

/// One serving cell: a network, its demand source, the policy serving
/// it, the serve configuration and a metrics sink — everything a
/// [`crate::ClusterEngine`] needs to drive the cell independently of
/// its neighbors.
///
/// Cells have no identity of their own: a cell's **id is its position**
/// in the `Vec<Cell>` handed to [`crate::ClusterEngine::run`], and its
/// shard is `id % shards`. The initial cache defaults to empty and the
/// sink to [`NullSink`]; both are overridable builder-style.
pub struct Cell {
    pub(crate) network: Network,
    pub(crate) cost_model: CostModel,
    pub(crate) config: ServeConfig,
    pub(crate) source: Box<dyn DemandSource + Send>,
    pub(crate) policy: Box<dyn OnlinePolicy + Send>,
    pub(crate) initial: CacheState,
    pub(crate) sink: Box<dyn MetricsSink + Send>,
    pub(crate) shutdown: ShutdownFlag,
    pub(crate) recorder: FlightRecorder,
}

impl fmt::Debug for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cell")
            .field("policy", &self.policy.name())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Cell {
    /// Builds a cell with an empty initial cache and a [`NullSink`].
    #[must_use]
    pub fn new(
        network: Network,
        cost_model: CostModel,
        config: ServeConfig,
        source: Box<dyn DemandSource + Send>,
        policy: Box<dyn OnlinePolicy + Send>,
    ) -> Self {
        let initial = CacheState::empty(&network);
        Cell {
            network,
            cost_model,
            config,
            source,
            policy,
            initial,
            sink: Box::new(NullSink),
            shutdown: ShutdownFlag::default(),
            recorder: FlightRecorder::disabled(),
        }
    }

    /// Attaches a flight recorder capturing this cell's per-slot frames
    /// and watchdog triggers (defaults to disabled, which is free).
    #[must_use]
    pub fn with_recorder(mut self, recorder: FlightRecorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Attaches a cooperative stop flag checked before every slot: when
    /// raised the cell winds down at the next slot boundary with its
    /// summary emitted and sink flushed. Share one flag across a
    /// cluster's cells to drain them all together (the gateway's
    /// graceful-drain path).
    #[must_use]
    pub fn with_shutdown(mut self, shutdown: ShutdownFlag) -> Self {
        self.shutdown = shutdown;
        self
    }

    /// Overrides the initial cache state (defaults to empty).
    #[must_use]
    pub fn with_initial(mut self, initial: CacheState) -> Self {
        self.initial = initial;
        self
    }

    /// Attaches a metrics sink receiving the cell's full record stream
    /// (header, per-slot metrics, optional ledger/ratio records,
    /// summary) — exactly what a single-cell
    /// [`jocal_serve::engine::ServeEngine`] run would deliver.
    #[must_use]
    pub fn with_sink(mut self, sink: Box<dyn MetricsSink + Send>) -> Self {
        self.sink = sink;
        self
    }

    /// The cell's serve configuration.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The name of the policy serving this cell.
    #[must_use]
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }
}
