//! The sharded cluster driver.
//!
//! [`ClusterEngine::run`] serves `M` independent [`Cell`]s over shared
//! slot rounds: in every round, each unfinished cell advances by
//! exactly one slot. A fixed worker pool (bounded by the shard count
//! and the [`Parallelism`] knob) steals cells from a per-round claim
//! counter — the same scoped-thread fan-out the per-slot solver uses in
//! `jocal_core::workspace`.
//!
//! # Determinism
//!
//! Cells share nothing: each owns its network, RNG, window, policy and
//! sink, and the only cross-cell state — the shard-labeled telemetry
//! counters — is atomic adds. Which worker steps which cell therefore
//! cannot change any cell's byte stream, so a run is bit-identical
//! across pool sizes, and a 1-cell cluster is bit-identical to a
//! single-cell [`jocal_serve::engine::ServeEngine`] run (proven in
//! `jocal-serve/tests/parity.rs`). Round boundaries are real barriers,
//! which also makes *error rounds* deterministic: every cell still
//! unfinished when another cell fails completes exactly the rounds up
//! to and including the failing one.

use crate::cell::Cell;
use crate::error::ClusterError;
use crate::report::{CellReport, ClusterAggregate, ClusterReport, ShardSummary};
use jocal_core::ledger::SlotLedger;
use jocal_core::workspace::Parallelism;
use jocal_online::policy::OnlinePolicy;
use jocal_serve::cell::CellCore;
use jocal_serve::error::ServeError;
use jocal_serve::metrics::{MetricsSink, RatioRecord, RunHeader, ServeSummary, SlotMetrics};
use jocal_serve::source::DemandSource;
use jocal_telemetry::{monotonic_us, Counter, Gauge, Telemetry};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

/// Cluster scheduling knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of shards: the aggregation partition (cell `i` folds into
    /// shard `i % shards`) **and** the upper bound on the worker pool —
    /// shards are the parallelism lever.
    pub shards: usize,
    /// Worker-pool sizing policy. The pool is
    /// `parallelism.workers(min(cells, shards))`; `Sequential` (or a
    /// resolved pool of 1) runs the cells inline on the caller's
    /// thread.
    pub parallelism: Parallelism,
}

impl ClusterConfig {
    /// A `shards`-shard config that sizes its pool automatically.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        ClusterConfig {
            shards,
            parallelism: Parallelism::Auto,
        }
    }

    /// Overrides the worker-pool sizing policy.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }
}

/// Wraps a cell's sink to bump the shard-labeled cluster counters
/// (`cluster_slots_total{shard}`, `cluster_requests_total{shard}`) as
/// slot records stream through. Pure pass-through otherwise: the wrapped
/// sink sees exactly the records a single-cell run would deliver.
#[derive(Debug)]
struct ShardSink {
    inner: Box<dyn MetricsSink + Send>,
    slots: Counter,
    requests: Counter,
    /// Monotonic timestamp of the shard's last slot record — the
    /// per-shard staleness signal a `GaugeAgeUs` SLO watches.
    last_slot_us: Gauge,
}

impl MetricsSink for ShardSink {
    fn header(&mut self, header: &RunHeader) -> Result<(), ServeError> {
        self.inner.header(header)
    }

    fn slot(&mut self, metrics: &SlotMetrics) -> Result<(), ServeError> {
        self.slots.incr();
        self.requests.add(metrics.requests);
        self.last_slot_us.set(monotonic_us() as f64);
        self.inner.slot(metrics)
    }

    fn ledger(&mut self, ledger: &SlotLedger) -> Result<(), ServeError> {
        self.inner.ledger(ledger)
    }

    fn ratio(&mut self, record: &RatioRecord) -> Result<(), ServeError> {
        self.inner.ratio(record)
    }

    fn summary(&mut self, summary: &ServeSummary) -> Result<(), ServeError> {
        self.inner.summary(summary)
    }

    fn flush(&mut self) -> Result<(), ServeError> {
        self.inner.flush()
    }
}

/// A started cell plus everything its steps borrow.
#[derive(Debug)]
struct CellRuntime {
    shard: usize,
    core: CellCore,
    source: Box<dyn DemandSource + Send>,
    policy: Box<dyn OnlinePolicy + Send>,
    sink: ShardSink,
    done: bool,
    error: Option<ServeError>,
}

/// Advances one cell by one slot, recording completion or failure.
fn step_cell(rt: &mut CellRuntime) {
    match rt
        .core
        .step(rt.source.as_mut(), rt.policy.as_mut(), &mut rt.sink)
    {
        Ok(true) => {}
        Ok(false) => rt.done = true,
        Err(e) => {
            rt.done = true;
            rt.error = Some(e);
        }
    }
}

/// Drives `M` cells over shared slot rounds from a fixed worker pool.
#[derive(Debug)]
pub struct ClusterEngine {
    config: ClusterConfig,
    telemetry: Telemetry,
}

impl ClusterEngine {
    /// Creates an engine with the given scheduling config.
    #[must_use]
    pub fn new(config: ClusterConfig) -> Self {
        ClusterEngine {
            config,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle shared by every cell. Beyond the
    /// per-cell serve metrics, the cluster adds shard-labeled
    /// `cluster_slots_total` / `cluster_requests_total` counters.
    /// Observation never changes decisions.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The engine's telemetry handle.
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Serves every cell to completion (source exhaustion or its
    /// `max_slots` cap), returning per-cell reports, per-shard
    /// aggregates and the cluster rollup.
    ///
    /// Cell `i` aggregates into shard `i % shards`. Every sink is
    /// flushed before this returns, on success and failure alike.
    ///
    /// # Errors
    ///
    /// Rejects an empty cell set or a zero shard count; propagates the
    /// lowest-id cell failure (remaining cells stop at the end of the
    /// failing round).
    ///
    /// # Panics
    ///
    /// Panics if a cell's configured window is zero, or if a policy
    /// panics on a worker thread.
    pub fn run(&self, cells: Vec<Cell>) -> Result<ClusterReport, ClusterError> {
        let shards = self.config.shards;
        if shards == 0 {
            return Err(ClusterError::config(
                "shards",
                "a cluster needs at least one shard",
            ));
        }
        if cells.is_empty() {
            return Err(ClusterError::config(
                "cells",
                "a cluster needs at least one cell",
            ));
        }
        let num_cells = cells.len();

        // Start cells sequentially in id order: headers are emitted and
        // policies instrumented in a deterministic sequence.
        let mut runtimes: Vec<Mutex<CellRuntime>> = Vec::with_capacity(num_cells);
        for (id, cell) in cells.into_iter().enumerate() {
            let shard = id % shards;
            let label = shard.to_string();
            let Cell {
                network,
                cost_model,
                config,
                mut source,
                mut policy,
                initial,
                sink,
                shutdown,
                recorder,
            } = cell;
            let mut sink = ShardSink {
                inner: sink,
                slots: self
                    .telemetry
                    .counter_with("cluster_slots_total", "shard", &label),
                requests: self
                    .telemetry
                    .counter_with("cluster_requests_total", "shard", &label),
                last_slot_us: self.telemetry.gauge_with(
                    "cluster_shard_last_slot_us",
                    "shard",
                    &label,
                ),
            };
            let core = match CellCore::start(
                &network,
                &cost_model,
                config,
                &self.telemetry,
                source.as_mut(),
                policy.as_mut(),
                initial,
                &mut sink,
            ) {
                Ok(mut core) => {
                    core.set_shutdown(shutdown);
                    core.set_recorder(recorder);
                    core
                }
                Err(e) => {
                    let _ = sink.flush();
                    flush_all(&mut runtimes);
                    return Err(ClusterError::Cell {
                        cell: id,
                        source: e,
                    });
                }
            };
            runtimes.push(Mutex::new(CellRuntime {
                shard,
                core,
                source,
                policy,
                sink,
                done: false,
                error: None,
            }));
        }

        // Shards bound the pool: a 1-shard cluster is strictly
        // sequential no matter how many workers the knob would allow.
        let pool = self.config.parallelism.workers(num_cells.min(shards));
        if pool <= 1 {
            Self::run_rounds_sequential(&mut runtimes);
        } else {
            Self::run_rounds_pooled(&runtimes, pool);
        }

        // Lowest failing cell id wins — deterministic regardless of
        // which worker observed the failure.
        let failure = runtimes.iter_mut().enumerate().find_map(|(id, rt)| {
            let rt = rt.get_mut().expect("cell runtime poisoned");
            rt.error.take().map(|e| (id, e))
        });
        if let Some((cell, source)) = failure {
            flush_all(&mut runtimes);
            return Err(ClusterError::Cell { cell, source });
        }

        // Finish in id order: summaries, flushes and aggregate folds
        // all happen in one deterministic sequence.
        let mut reports: Vec<CellReport> = Vec::with_capacity(num_cells);
        let mut runtime_iter = runtimes.into_iter().enumerate();
        for (id, rt) in &mut runtime_iter {
            let CellRuntime {
                shard,
                core,
                mut sink,
                ..
            } = rt.into_inner().expect("cell runtime poisoned");
            let finished = core.finish(&mut sink).and_then(|report| {
                sink.flush()?;
                Ok(report)
            });
            match finished {
                Ok(report) => reports.push(CellReport {
                    cell: id,
                    shard,
                    report,
                }),
                Err(e) => {
                    let _ = sink.flush();
                    for (_, other) in runtime_iter {
                        let mut other = other.into_inner().expect("cell runtime poisoned");
                        let _ = other.sink.flush();
                    }
                    return Err(ClusterError::Cell {
                        cell: id,
                        source: e,
                    });
                }
            }
        }

        // Two-stage deterministic fold: cells → shard (in cell-id
        // order), shards → rollup (in shard order).
        let mut shard_totals = vec![ClusterAggregate::default(); shards];
        for report in &reports {
            shard_totals[report.shard].fold_cell(&report.report);
        }
        let shard_summaries: Vec<ShardSummary> = shard_totals
            .into_iter()
            .enumerate()
            .map(|(shard, totals)| ShardSummary { shard, totals })
            .collect();
        let mut rollup = ClusterAggregate::default();
        for summary in &shard_summaries {
            rollup.absorb(&summary.totals);
        }

        Ok(ClusterReport {
            cells: reports,
            shards: shard_summaries,
            rollup,
        })
    }

    /// Inline scheduling: one slot per unfinished cell per round, in
    /// cell-id order, until every cell finishes or any cell fails (the
    /// failing round still completes — matching the pooled path).
    fn run_rounds_sequential(runtimes: &mut [Mutex<CellRuntime>]) {
        loop {
            let mut remaining = 0;
            let mut failed = false;
            for rt in runtimes.iter_mut() {
                let rt = rt.get_mut().expect("cell runtime poisoned");
                if !rt.done {
                    step_cell(rt);
                }
                remaining += usize::from(!rt.done);
                failed |= rt.error.is_some();
            }
            if remaining == 0 || failed {
                return;
            }
        }
    }

    /// Pooled scheduling: a persistent worker pool separated from the
    /// coordinator by a round barrier. Workers steal cells through an
    /// atomic claim counter (the `jocal_core::workspace` fan-out
    /// pattern); the coordinator resets the counter and checks
    /// completion between rounds.
    fn run_rounds_pooled(runtimes: &[Mutex<CellRuntime>], pool: usize) {
        let barrier = Barrier::new(pool + 1);
        let claim = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..pool {
                scope.spawn(|| loop {
                    barrier.wait();
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    loop {
                        let i = claim.fetch_add(1, Ordering::Relaxed);
                        if i >= runtimes.len() {
                            break;
                        }
                        let mut rt = runtimes[i].lock().expect("cell runtime poisoned");
                        if !rt.done {
                            step_cell(&mut rt);
                        }
                    }
                    barrier.wait();
                });
            }
            loop {
                claim.store(0, Ordering::Relaxed);
                barrier.wait(); // open the round
                barrier.wait(); // wait for every worker to drain it
                let mut remaining = 0;
                let mut failed = false;
                for rt in runtimes {
                    let rt = rt.lock().expect("cell runtime poisoned");
                    remaining += usize::from(!rt.done);
                    failed |= rt.error.is_some();
                }
                if remaining == 0 || failed {
                    stop.store(true, Ordering::Release);
                    barrier.wait(); // release workers into the stop check
                    break;
                }
            }
        });
    }
}

/// Best-effort flush of every cell sink on an error path.
fn flush_all(runtimes: &mut [Mutex<CellRuntime>]) {
    for rt in runtimes {
        let _ = rt.get_mut().expect("cell runtime poisoned").sink.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell;
    use jocal_core::plan::{CacheState, LoadPlan};
    use jocal_core::CostModel;
    use jocal_online::policy::{Action, PolicyContext};
    use jocal_serve::engine::{ServeConfig, ServeEngine};
    use jocal_serve::metrics::{MemorySink, SharedMemorySink};
    use jocal_serve::source::TraceSource;
    use jocal_sim::scenario::ScenarioConfig;
    use jocal_sim::{ClassId, ContentId};

    /// Caches the first `C` items and offloads everything it can.
    #[derive(Debug)]
    struct Greedy;

    impl OnlinePolicy for Greedy {
        fn name(&self) -> &str {
            "greedy"
        }

        fn decide(
            &mut self,
            _t: usize,
            ctx: &PolicyContext<'_>,
        ) -> Result<Action, jocal_core::CoreError> {
            let mut cache = CacheState::empty(ctx.network);
            let mut load = LoadPlan::zeros(ctx.network, 1);
            for (n, sbs) in ctx.network.iter_sbs() {
                for k in 0..sbs.cache_capacity() {
                    cache.set(n, ContentId(k), true);
                    for m in 0..sbs.num_classes() {
                        load.set_y(0, n, ClassId(m), ContentId(k), 1.0);
                    }
                }
            }
            Ok(Action { cache, load })
        }

        fn reset(&mut self) {}
    }

    /// Fails once `t` reaches the given slot.
    #[derive(Debug)]
    struct FailsAt(usize);

    impl OnlinePolicy for FailsAt {
        fn name(&self) -> &str {
            "fails-at"
        }

        fn decide(
            &mut self,
            t: usize,
            ctx: &PolicyContext<'_>,
        ) -> Result<Action, jocal_core::CoreError> {
            if t >= self.0 {
                return Err(jocal_core::CoreError::infeasible("test", "induced failure"));
            }
            Ok(Action::idle(ctx.network))
        }

        fn reset(&mut self) {}
    }

    fn greedy_cell(seed: u64, horizon: usize, sink: SharedMemorySink) -> Cell {
        let s = ScenarioConfig::tiny()
            .with_horizon(horizon)
            .build(seed)
            .unwrap();
        Cell::new(
            s.network.clone(),
            CostModel::paper(),
            ServeConfig::new(3, seed),
            Box::new(TraceSource::new(s.demand.clone())),
            Box::new(Greedy),
        )
        .with_sink(Box::new(sink))
    }

    fn fingerprint(sink: &MemorySink) -> Vec<(usize, u64, u64, u64)> {
        sink.slots
            .iter()
            .map(|m| {
                (
                    m.slot,
                    m.requests,
                    m.sbs_served.to_bits(),
                    m.cost.total().to_bits(),
                )
            })
            .collect()
    }

    #[test]
    fn one_cell_cluster_matches_the_single_cell_engine() {
        let s = ScenarioConfig::tiny().with_horizon(10).build(301).unwrap();
        let model = CostModel::paper();
        let config = ServeConfig::new(3, 7);

        let engine = ServeEngine::new(&s.network, &model, config);
        let mut single_sink = MemorySink::default();
        let single = engine
            .run(
                &mut TraceSource::new(s.demand.clone()),
                &mut Greedy,
                CacheState::empty(&s.network),
                &mut single_sink,
            )
            .unwrap();

        let shared = SharedMemorySink::new();
        let cell = Cell::new(
            s.network.clone(),
            model,
            config,
            Box::new(TraceSource::new(s.demand.clone())),
            Box::new(Greedy),
        )
        .with_sink(Box::new(shared.clone()));
        let cluster = ClusterEngine::new(ClusterConfig::new(1))
            .run(vec![cell])
            .unwrap();

        assert_eq!(cluster.cells.len(), 1);
        assert_eq!(cluster.cells[0].report, single);
        let cluster_sink = shared.snapshot();
        assert_eq!(cluster_sink.header, single_sink.header);
        assert_eq!(cluster_sink.slots, single_sink.slots);
        assert_eq!(cluster_sink.summary, single_sink.summary);
        assert_eq!(cluster.rollup.slots, single.summary.slots);
        assert_eq!(
            cluster.rollup.hit_ratio.to_bits(),
            single.summary.hit_ratio.to_bits()
        );
    }

    #[test]
    fn pool_size_does_not_change_any_cell_byte_stream() {
        let run = |shards: usize, parallelism: Parallelism| {
            let sinks: Vec<SharedMemorySink> = (0..6).map(|_| SharedMemorySink::new()).collect();
            let cells = sinks
                .iter()
                .enumerate()
                .map(|(i, sink)| greedy_cell(400 + i as u64, 8, sink.clone()))
                .collect();
            let report =
                ClusterEngine::new(ClusterConfig::new(shards).with_parallelism(parallelism))
                    .run(cells)
                    .unwrap();
            (
                report.rollup,
                sinks
                    .iter()
                    .map(|s| fingerprint(&s.snapshot()))
                    .collect::<Vec<_>>(),
            )
        };

        // Same shard count, inline vs a 3-worker pool: the fold
        // topology is fixed, so streams AND the rollup must be bitwise
        // identical.
        let (rollup_seq, streams_seq) = run(3, Parallelism::Sequential);
        let (rollup_pool, streams_pool) = run(3, Parallelism::Threads(4));
        assert_eq!(streams_seq, streams_pool);
        assert_eq!(rollup_seq, rollup_pool);
        assert_eq!(
            rollup_seq.cost.total().to_bits(),
            rollup_pool.cost.total().to_bits()
        );

        // A different shard count changes the rollup's f64 *fold tree*
        // (never by more than reassociation rounding) but must not
        // change any cell's byte stream or any integer total.
        let (rollup_one, streams_one) = run(1, Parallelism::Sequential);
        assert_eq!(streams_one, streams_pool);
        assert_eq!(rollup_one.slots, rollup_pool.slots);
        assert_eq!(rollup_one.requests, rollup_pool.requests);
        let (a, b) = (rollup_one.cost.total(), rollup_pool.cost.total());
        assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{a} vs {b}");
    }

    #[test]
    fn shard_aggregates_reconcile_to_the_rollup() {
        let telemetry = Telemetry::enabled();
        let sinks: Vec<SharedMemorySink> = (0..5).map(|_| SharedMemorySink::new()).collect();
        let cells = sinks
            .iter()
            .enumerate()
            .map(|(i, sink)| greedy_cell(500 + i as u64, 6, sink.clone()))
            .collect();
        let report = ClusterEngine::new(ClusterConfig::new(2))
            .with_telemetry(telemetry.clone())
            .run(cells)
            .unwrap();

        // Cell i lands in shard i % 2.
        for cell in &report.cells {
            assert_eq!(cell.shard, cell.cell % 2);
        }
        assert_eq!(report.shards.len(), 2);
        assert_eq!(report.shards[0].totals.cells, 3);
        assert_eq!(report.shards[1].totals.cells, 2);

        // Shard totals reconcile exactly with their member cells, and
        // the rollup with the shard totals.
        for shard in &report.shards {
            let member_slots: usize = report
                .cells
                .iter()
                .filter(|c| c.shard == shard.shard)
                .map(|c| c.report.summary.slots)
                .sum();
            assert_eq!(shard.totals.slots, member_slots);
        }
        assert_eq!(report.rollup.cells, 5);
        assert_eq!(report.rollup.slots, 5 * 6);
        let shard_slot_sum: usize = report.shards.iter().map(|s| s.totals.slots).sum();
        assert_eq!(report.rollup.slots, shard_slot_sum);

        // The shard-labeled telemetry counters see the same totals.
        for shard in &report.shards {
            let label = shard.shard.to_string();
            assert_eq!(
                telemetry
                    .counter_with("cluster_slots_total", "shard", &label)
                    .get(),
                shard.totals.slots as u64
            );
            assert_eq!(
                telemetry
                    .counter_with("cluster_requests_total", "shard", &label)
                    .get(),
                shard.totals.requests
            );
        }
    }

    #[test]
    fn lowest_failing_cell_id_wins() {
        // Cells 1 and 3 both fail in the same round (their second
        // slot); the reported failure must be cell 1 regardless of
        // which worker tripped first.
        let s = ScenarioConfig::tiny().with_horizon(8).build(600).unwrap();
        let model = CostModel::paper();
        let make = |policy: Box<dyn OnlinePolicy + Send>| {
            Cell::new(
                s.network.clone(),
                model,
                ServeConfig::new(2, 9),
                Box::new(TraceSource::new(s.demand.clone())),
                policy,
            )
        };
        let cells = vec![
            make(Box::new(Greedy)),
            make(Box::new(FailsAt(1))),
            make(Box::new(Greedy)),
            make(Box::new(FailsAt(1))),
        ];
        let err =
            ClusterEngine::new(ClusterConfig::new(4).with_parallelism(Parallelism::Threads(4)))
                .run(cells)
                .unwrap_err();
        match err {
            ClusterError::Cell { cell, .. } => assert_eq!(cell, 1),
            other => panic!("expected a cell failure, got {other}"),
        }
    }

    #[test]
    fn empty_cells_and_zero_shards_are_rejected() {
        let err = ClusterEngine::new(ClusterConfig::new(2))
            .run(vec![])
            .unwrap_err();
        assert!(matches!(err, ClusterError::Config { what: "cells", .. }));

        let sink = SharedMemorySink::new();
        let err = ClusterEngine::new(ClusterConfig::new(0))
            .run(vec![greedy_cell(700, 4, sink)])
            .unwrap_err();
        assert!(matches!(err, ClusterError::Config { what: "shards", .. }));
    }

    #[test]
    fn mixed_length_cells_complete_independently() {
        // Horizons 4, 9 and a 5-slot cap over a 12-slot trace: rounds
        // keep going until the longest cell drains, and each cell stops
        // exactly where its own source/cap says.
        let sinks: Vec<SharedMemorySink> = (0..3).map(|_| SharedMemorySink::new()).collect();
        let mut capped = greedy_cell(801, 12, sinks[2].clone());
        capped.config.max_slots = Some(5);
        let cells = vec![
            greedy_cell(800, 4, sinks[0].clone()),
            greedy_cell(800, 9, sinks[1].clone()),
            capped,
        ];
        let report =
            ClusterEngine::new(ClusterConfig::new(3).with_parallelism(Parallelism::Threads(3)))
                .run(cells)
                .unwrap();
        let slots: Vec<usize> = report
            .cells
            .iter()
            .map(|c| c.report.summary.slots)
            .collect();
        assert_eq!(slots, vec![4, 9, 5]);
        assert_eq!(report.rollup.slots, 18);
        assert_eq!(sinks[1].snapshot().slots.len(), 9);
    }

    #[test]
    fn shards_beyond_cells_stay_empty_but_present() {
        let sink = SharedMemorySink::new();
        let report = ClusterEngine::new(ClusterConfig::new(4))
            .run(vec![greedy_cell(900, 4, sink)])
            .unwrap();
        assert_eq!(report.shards.len(), 4);
        assert_eq!(report.shards[0].totals.cells, 1);
        for shard in &report.shards[1..] {
            assert_eq!(shard.totals, ClusterAggregate::default());
        }
        assert_eq!(report.rollup.cells, 1);
    }
}
