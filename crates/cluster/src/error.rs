//! Cluster-level errors.

use jocal_serve::error::ServeError;
use std::error::Error;
use std::fmt;

/// Errors from a cluster run.
#[derive(Debug)]
pub enum ClusterError {
    /// A cell's serve loop failed. When several cells fail in the same
    /// scheduling round, the **lowest cell id** is reported — the pick
    /// is deterministic regardless of worker interleaving.
    Cell {
        /// The failing cell's id (position in the input `Vec<Cell>`).
        cell: usize,
        /// The underlying serve failure.
        source: ServeError,
    },
    /// The cluster configuration or cell set is invalid.
    Config {
        /// Which knob is at fault.
        what: &'static str,
        /// What is wrong with it.
        detail: String,
    },
}

impl ClusterError {
    /// Builds a configuration error.
    #[must_use]
    pub fn config(what: &'static str, detail: impl Into<String>) -> Self {
        ClusterError::Config {
            what,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Cell { cell, source } => {
                write!(f, "cell {cell} failed: {source}")
            }
            ClusterError::Config { what, detail } => {
                write!(f, "invalid cluster config `{what}`: {detail}")
            }
        }
    }
}

impl Error for ClusterError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClusterError::Cell { source, .. } => Some(source),
            ClusterError::Config { .. } => None,
        }
    }
}
